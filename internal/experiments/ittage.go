package experiments

// The ITTAGE extension experiment backs the paper's §IV claim that STBPU
// "can be applied to other branch predictor configurations and designs"
// for the *indirect* side: a dedicated ITTAGE target predictor is
// attached ahead of the BTB mode-two path, in unprotected (legacy-hashed)
// and ST-protected (ψ-keyed, φ-encrypted) variants. The reproduction
// claims: (1) ITTAGE improves target prediction on indirect-heavy
// workloads over the BTB-only baseline, and (2) the ST wrapper keeps that
// improvement — protection costs no more on ITTAGE than it does on the
// baseline structures.

import (
	"fmt"
	"io"

	"stbpu/internal/core"
	"stbpu/internal/sim"
	"stbpu/internal/stats"
)

// ITTAGERow is one workload's four-way comparison.
type ITTAGERow struct {
	Workload string
	// TargetRate per variant: [0] BTB-only, [1] BTB+ITTAGE,
	// [2] ST BTB-only, [3] ST BTB+ITTAGE.
	TargetRate [4]float64
	// OAE per variant, same order.
	OAE [4]float64
}

// ITTAGEResult is the whole comparison.
type ITTAGEResult struct {
	Rows []ITTAGERow
	// AvgTargetRate and AvgOAE are per-variant means.
	AvgTargetRate, AvgOAE [4]float64
}

// ITTAGEVariants names the comparison columns.
func ITTAGEVariants() [4]string {
	return [4]string{"BTB-only", "BTB+ITTAGE", "ST_BTB-only", "ST_BTB+ITTAGE"}
}

// ittageWorkloads picks indirect-heavy presets (interpreter/browser-like
// fan-out) plus one SPEC control.
func ittageWorkloads() []string {
	return []string{
		"chrome-1jetstream", "chrome-1speedometer", "523.xalancbmk",
		"500.perlbench", "502.gcc", "505.mcf",
	}
}

// RunITTAGE measures the four variants.
func RunITTAGE(s Scale) (ITTAGEResult, error) {
	names := capList(ittageWorkloads(), s.MaxWorkloads)
	rows := make([]ITTAGERow, len(names))
	errs := make([]error, len(names))
	parallelFor(len(names), func(i int) {
		tr, _, err := genTrace(names[i], s)
		if err != nil {
			errs[i] = err
			return
		}
		models := []sim.Model{
			&sim.UnitModel{ModelName: "btb-only", Unit: core.NewUnprotectedUnit(core.DirSKLCond)},
			&sim.UnitModel{ModelName: "btb+ittage", Unit: core.NewUnprotectedUnitITTAGE(core.DirSKLCond)},
			&sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: core.DirSKLCond, Seed: 7})},
			&sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: core.DirSKLCond, Seed: 7, IndirectITTAGE: true})},
		}
		row := ITTAGERow{Workload: names[i]}
		for v, m := range models {
			res := sim.Run(m, tr)
			row.TargetRate[v] = res.TargetRate()
			row.OAE[v] = res.OAE()
		}
		rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return ITTAGEResult{}, err
		}
	}
	var res ITTAGEResult
	res.Rows = rows
	for v := 0; v < 4; v++ {
		tr := make([]float64, len(rows))
		oae := make([]float64, len(rows))
		for i, r := range rows {
			tr[i] = r.TargetRate[v]
			oae[i] = r.OAE[v]
		}
		res.AvgTargetRate[v] = stats.Mean(tr)
		res.AvgOAE[v] = stats.Mean(oae)
	}
	return res, nil
}

// Render writes the comparison as a text table.
func (r ITTAGEResult) Render(w io.Writer) {
	names := ITTAGEVariants()
	fmt.Fprintf(w, "%-22s", "workload (target rate)")
	for _, n := range names {
		fmt.Fprintf(w, " %14s", n)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-22s", row.Workload)
		for v := range names {
			fmt.Fprintf(w, " %14.4f", row.TargetRate[v])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-22s", "AVG target rate")
	for v := range names {
		fmt.Fprintf(w, " %14.4f", r.AvgTargetRate[v])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s", "AVG OAE")
	for v := range names {
		fmt.Fprintf(w, " %14.4f", r.AvgOAE[v])
	}
	fmt.Fprintln(w)
}

// ITTAGEHelps reports claim (1): ITTAGE raises the average target rate.
func (r ITTAGEResult) ITTAGEHelps() bool {
	return r.AvgTargetRate[1] > r.AvgTargetRate[0]
}

// ProtectionKeepsGain reports claim (2): the target-rate *gain* ITTAGE
// provides survives the ST wrapper — the protected pair's improvement is
// within eps of the unprotected pair's improvement. (Comparing protected
// against unprotected directly would conflate ITTAGE with the general ST
// cost the other figures already measure.)
func (r ITTAGEResult) ProtectionKeepsGain(eps float64) bool {
	unprotGain := r.AvgTargetRate[1] - r.AvgTargetRate[0]
	protGain := r.AvgTargetRate[3] - r.AvgTargetRate[2]
	return protGain >= unprotGain-eps
}
