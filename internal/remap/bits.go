// Package remap implements the STBPU keyed remapping functions R1..R4, Rt,
// Rp (paper §IV-B, §V) and the automated generator that discovers them.
//
// A remapping function is a single-cycle hardware hash circuit composed of
// substitution layers (4→4 and 3→3 S-boxes from PRESENT and SPONGENT),
// permutation layers (P-boxes), and non-invertible compression layers
// (XOR-tree C-S boxes). The generator (generate.go) composes circuits layer
// by layer under the paper's constraints:
//
//	C1 — critical path within one clock cycle (≤45 transistors, cost.go)
//	C2 — output uniformity (balls-and-bins bin CV, validate.go)
//	C3 — strict avalanche criterion (validate.go)
//
// Two interchangeable backends implement the remap interface consumed by
// the predictor models: CircuitSet (bit-accurate generated circuits) and
// Mixer (a keyed xor-rotate-multiply mixer with the same keyed/uniform/
// avalanche properties, ~10× faster in software; the simulator default).
// DESIGN.md documents this substitution; TestBackendsAgreeOnAccuracy keeps
// them statistically interchangeable.
package remap

import (
	"fmt"
	"math/bits"
)

// MaxBits is the widest bit vector a circuit can consume or produce. The
// widest paper function is R4 at 96 input bits (32 ψ + 16 GHR + 48 s);
// TAGE folds longer histories before remapping, as real TAGE hardware does.
const MaxBits = 128

// Bits is a fixed 128-bit little-endian bit vector: bit i of the logical
// value is bit (i%64) of word i/64.
type Bits [2]uint64

// BitsFrom packs the low n bits of x into a vector.
func BitsFrom(x uint64) Bits { return Bits{x, 0} }

// Get returns bit i.
func (b Bits) Get(i int) uint64 { return (b[i>>6] >> (uint(i) & 63)) & 1 }

// Set returns a copy with bit i set to v (0 or 1).
func (b Bits) Set(i int, v uint64) Bits {
	mask := uint64(1) << (uint(i) & 63)
	if v != 0 {
		b[i>>6] |= mask
	} else {
		b[i>>6] &^= mask
	}
	return b
}

// Flip returns a copy with bit i inverted.
func (b Bits) Flip(i int) Bits {
	b[i>>6] ^= uint64(1) << (uint(i) & 63)
	return b
}

// Low returns the low 64 bits.
func (b Bits) Low() uint64 { return b[0] }

// Mask returns a copy with all bits at positions >= n cleared.
func (b Bits) Mask(n int) Bits {
	switch {
	case n <= 0:
		return Bits{}
	case n < 64:
		return Bits{b[0] & (1<<uint(n) - 1), 0}
	case n == 64:
		return Bits{b[0], 0}
	case n < 128:
		return Bits{b[0], b[1] & (1<<uint(n-64) - 1)}
	default:
		return b
	}
}

// Xor returns the bitwise XOR of two vectors.
func (b Bits) Xor(o Bits) Bits { return Bits{b[0] ^ o[0], b[1] ^ o[1]} }

// OnesCount returns the number of set bits.
func (b Bits) OnesCount() int {
	return bits.OnesCount64(b[0]) + bits.OnesCount64(b[1])
}

// Field extracts width bits starting at bit offset as a uint32. It panics
// if width exceeds 32.
func (b Bits) Field(offset, width int) uint32 {
	if width > 32 {
		panic(fmt.Sprintf("remap: field width %d exceeds 32", width))
	}
	var v uint64
	for i := 0; i < width; i++ {
		v |= b.Get(offset+i) << uint(i)
	}
	return uint32(v)
}

// PutField returns a copy with width bits of v stored at offset.
func (b Bits) PutField(offset, width int, v uint64) Bits {
	for i := 0; i < width; i++ {
		b = b.Set(offset+i, (v>>uint(i))&1)
	}
	return b
}

// String renders the vector as hex (high word first) for debugging.
func (b Bits) String() string { return fmt.Sprintf("%016x%016x", b[1], b[0]) }

// PackInputs concatenates fields (each given as value+width, LSB first)
// into a single vector: the standard way callers assemble ψ‖GHR‖s inputs.
// It panics if the total exceeds MaxBits.
func PackInputs(fields ...FieldSpec) Bits {
	var b Bits
	off := 0
	for _, f := range fields {
		if off+f.Width > MaxBits {
			panic("remap: packed input exceeds MaxBits")
		}
		b = b.PutField(off, f.Width, f.Value)
		off += f.Width
	}
	return b
}

// FieldSpec is one input field for PackInputs.
type FieldSpec struct {
	Value uint64
	Width int
}
