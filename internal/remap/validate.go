package remap

import (
	"math"

	"stbpu/internal/rng"
	"stbpu/internal/stats"
)

// QualityReport captures the C2/C3 metrics of a remapping function
// candidate (§V-A "Validation of Uniformity (C2) and Avalanche Effect
// (C3)"). Optimal values: BinCV 0, AvalancheMean 0.5, AvalancheCV 0,
// PerBitSpread 0.
type QualityReport struct {
	// BinCV is the *excess* of the observed balls-and-bins coefficient of
	// variation over the ideal Poisson CV sqrt(bins/samples) (C2). A
	// perfect hash scores ~0: indistinguishable from uniform random
	// throws. Values are clamped at 0 from below.
	BinCV float64
	// AvalancheMean is the mean relative Hamming distance of outputs under
	// single-bit input flips. Ideal is 0.5 (strict avalanche criterion).
	AvalancheMean float64
	// AvalancheCV is the CV of per-input average distances; 0 means every
	// input avalanches equally.
	AvalancheCV float64
	// PerBitSpread is max-min of the per-input-bit average distances; 0
	// means no input bit is weaker than another.
	PerBitSpread float64
	// Samples is the number of random inputs tested.
	Samples int
}

// Score reduces the report to the weighted optimization objective of §V-B:
// every metric normalized so that 0 is optimal, summed with unit weights.
func (q QualityReport) Score() float64 {
	return math.Abs(q.AvalancheMean-0.5)*2 + q.AvalancheCV + q.PerBitSpread + q.BinCV
}

// Passes applies the acceptance thresholds used when selecting the shipped
// functions: near-uniform bins, avalanche mean within tol of 50%, and no
// input bit with a grossly weaker avalanche.
func (q QualityReport) Passes(tol float64) bool {
	return q.BinCV <= tol &&
		math.Abs(q.AvalancheMean-0.5) <= tol/2 &&
		q.AvalancheCV <= tol &&
		q.PerBitSpread <= 4*tol
}

// Evaluate measures C2 and C3 for an arbitrary bit-vector function over
// `samples` random inputs. Uniformity is assessed over the low
// min(outBits, 14) output bits so the bin population stays meaningful at
// feasible sample counts; avalanche uses the full output width.
func Evaluate(f func(Bits) Bits, inBits, outBits, samples int, r *rng.Rand) QualityReport {
	if samples <= 0 {
		samples = 1024
	}
	binBits := outBits
	if binBits > 14 {
		binBits = 14
	}
	binN := 1 << uint(binBits)
	// Ensure several balls per bin on average.
	uniformSamples := samples
	if uniformSamples < binN*8 {
		uniformSamples = binN * 8
	}

	outputs := make([]uint64, uniformSamples)
	for i := range outputs {
		in := randomInput(r, inBits)
		outputs[i] = uint64(f(in).Field(0, binBits))
	}
	// A truly uniform hash still shows Poisson occupancy noise with
	// CV = sqrt(bins/samples); report only the excess above that floor.
	idealCV := math.Sqrt(float64(binN) / float64(uniformSamples))
	binCV := stats.BinCV(outputs, binN)/idealCV - 1
	if binCV < 0 {
		binCV = 0
	}

	// Avalanche: flip every input bit of each sample.
	perInputMeans := make([]float64, 0, samples)
	perBitSums := make([]float64, inBits)
	for s := 0; s < samples; s++ {
		in := randomInput(r, inBits)
		base := f(in)
		sum := 0.0
		for b := 0; b < inBits; b++ {
			d := float64(base.Xor(f(in.Flip(b))).OnesCount()) / float64(outBits)
			sum += d
			perBitSums[b] += d
		}
		perInputMeans = append(perInputMeans, sum/float64(inBits))
	}
	minBit, maxBit := math.Inf(1), math.Inf(-1)
	for _, s := range perBitSums {
		avg := s / float64(samples)
		minBit = math.Min(minBit, avg)
		maxBit = math.Max(maxBit, avg)
	}

	return QualityReport{
		BinCV:         binCV,
		AvalancheMean: stats.Mean(perInputMeans),
		AvalancheCV:   stats.CV(perInputMeans),
		PerBitSpread:  maxBit - minBit,
		Samples:       samples,
	}
}

// EvaluateCircuit runs Evaluate over a circuit.
func EvaluateCircuit(c *Circuit, samples int, r *rng.Rand) QualityReport {
	return Evaluate(c.Eval, c.InBits, c.OutBits, samples, r)
}

func randomInput(r *rng.Rand, inBits int) Bits {
	b := Bits{r.Uint64(), r.Uint64()}
	return b.Mask(inBits)
}
