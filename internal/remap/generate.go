package remap

import (
	"errors"
	"fmt"

	"stbpu/internal/rng"
)

// Automated remap-function generation (§V-A). The algorithm takes hardware
// constraints, composes candidate circuits one layer at a time from the
// primitive pool, and tests after every layer:
//
//  1. design satisfies all constraints and is structurally complete →
//     stored for scoring;
//  2. design violates a constraint → discarded;
//  3. design is incomplete but within budget → the primitive-selection
//     weights are adjusted and another layer is added.
//
// Completed candidates are scored with the unit-weight objective of §V-B
// (QualityReport.Score) and the minimum wins.

// GenConfig parameterizes one generator run.
type GenConfig struct {
	// Name labels the resulting circuit ("R1", ...).
	Name string
	// InBits/OutBits are the interface widths from Table II.
	InBits, OutBits int
	// Constraints is the C1 budget; zero value means DefaultConstraints.
	Constraints Constraints
	// Cost is the transistor model; zero value means DefaultCostModel.
	Cost CostModel
	// Candidates is how many constraint-satisfying designs to score
	// (default 8).
	Candidates int
	// Samples is the validation sample count per candidate (default 512;
	// the paper's final validation uses 1e6, applied in tests and the
	// remapgen CLI rather than on every construction).
	Samples int
	// MaxAttempts bounds total layer-addition restarts (default 2000).
	MaxAttempts int
	// Seed fixes the search; 0 derives one from the name.
	Seed uint64
}

func (c *GenConfig) fill() {
	if c.Constraints == (Constraints{}) {
		c.Constraints = DefaultConstraints
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel
	}
	if c.Candidates <= 0 {
		c.Candidates = 8
	}
	if c.Samples <= 0 {
		c.Samples = 512
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2000
	}
}

// ErrNoCandidate is returned when no circuit satisfying the constraints was
// found within the attempt budget.
var ErrNoCandidate = errors.New("remap: no constraint-satisfying candidate found")

// Generate searches for a remapping function meeting the configuration.
// It returns the best-scoring circuit and its quality report.
func Generate(cfg GenConfig) (*Circuit, QualityReport, error) {
	cfg.fill()
	if cfg.InBits <= 0 || cfg.InBits > MaxBits || cfg.OutBits <= 0 || cfg.OutBits >= cfg.InBits {
		return nil, QualityReport{}, fmt.Errorf("remap: invalid widths %d->%d", cfg.InBits, cfg.OutBits)
	}
	seed := cfg.Seed
	if seed == 0 {
		r := rng.NewFromString("remapgen:" + cfg.Name)
		seed = r.Uint64()
	}
	r := rng.New(seed)

	var (
		best      *Circuit
		bestQ     QualityReport
		bestScore = 1e18
		found     int
	)
	for attempt := 0; attempt < cfg.MaxAttempts && found < cfg.Candidates; attempt++ {
		c := buildCandidate(cfg, r)
		if c == nil {
			continue
		}
		if err := c.Validate(); err != nil {
			continue
		}
		cost := cfg.Cost.Estimate(c)
		if cost.Satisfies(cfg.Constraints) != nil {
			continue
		}
		q := EvaluateCircuit(c, cfg.Samples, r)
		found++
		if s := q.Score(); s < bestScore {
			best, bestQ, bestScore = c, q, s
		}
	}
	if best == nil {
		return nil, QualityReport{}, fmt.Errorf("%w (%s %d->%d)", ErrNoCandidate, cfg.Name, cfg.InBits, cfg.OutBits)
	}
	return best, bestQ, nil
}

// buildCandidate assembles one circuit layer by layer, steering primitive
// selection as the remaining depth budget shrinks (the "case 3" weight
// adjustment of §V-A). Returns nil if the build dead-ends.
//
// The layer grammar mirrors the published R1 structure (Fig. 2): mixing
// stages (substitution + permutation), a non-invertible XOR compression
// where every input wire fans out into ≥2 XOR trees, and post-compression
// substitution stages. The input fan-out is what gives the avalanche
// property: one flipped input bit deterministically flips fanout output
// bits of the compression, and the surrounding S-box stages make the
// pattern data-dependent.
func buildCandidate(cfg GenConfig, r *rng.Rand) *Circuit {
	c := &Circuit{Name: cfg.Name, InBits: cfg.InBits, OutBits: cfg.OutBits}
	w := cfg.InBits

	// Pick the compression fan-out by depth budget: higher fan-out means
	// deeper XOR trees but stronger diffusion.
	fanout := 2 + r.Intn(2)
	preSubs := 1
	postSubs := 2
	budget := func(f, pre, post int) int {
		k := (f*w + cfg.OutBits - 1) / cfg.OutBits
		return (pre+post)*cfg.Cost.SBox4Path + log2ceil(k)*cfg.Cost.XorPath
	}
	for budget(fanout, preSubs, postSubs) > cfg.Constraints.MaxCriticalPath && fanout > 2 {
		fanout--
	}
	for budget(fanout, preSubs, postSubs) > cfg.Constraints.MaxCriticalPath && postSubs > 1 {
		postSubs--
	}
	if budget(fanout, preSubs, postSubs) > cfg.Constraints.MaxCriticalPath {
		return nil
	}

	// Pre-compression mixing: substitution then permutation.
	for i := 0; i < preSubs; i++ {
		l, ok := makeSubLayer(w, r)
		if !ok {
			return nil
		}
		c.Layers = append(c.Layers, l)
		c.Layers = append(c.Layers, makePermLayer(w, cfg.Constraints.MaxCrossover, r))
	}

	// Non-invertible compression with input fan-out.
	c.Layers = append(c.Layers, makeCompressLayer(w, cfg.OutBits, fanout, r))
	w = cfg.OutBits

	// Post-compression mixing: substitution (and permutation between
	// substitution stages so S-box group boundaries shift).
	for i := 0; i < postSubs; i++ {
		l, ok := makeSubLayer(w, r)
		if !ok {
			return nil
		}
		c.Layers = append(c.Layers, l)
		if i != postSubs-1 {
			c.Layers = append(c.Layers, makePermLayer(w, cfg.Constraints.MaxCrossover, r))
		}
	}
	if len(c.Layers) > cfg.Constraints.MaxLayers {
		return nil
	}
	return c
}

// makeSubLayer tiles the state width with S-boxes from the pool: 4-bit
// boxes with 3-bit boxes covering the remainder (4a + 3b = w). Returns
// ok=false for widths < 3 that cannot be tiled.
func makeSubLayer(w int, r *rng.Rand) (Layer, bool) {
	n3 := 0
	switch w % 4 {
	case 1:
		n3 = 3
	case 2:
		n3 = 2
	case 3:
		n3 = 1
	}
	if w < 3*n3 || (w-3*n3)%4 != 0 {
		return Layer{}, false
	}
	n4 := (w - 3*n3) / 4
	boxes := make([]SBox, 0, n4+n3)
	for i := 0; i < n4; i++ {
		if r.Bool(0.5) {
			boxes = append(boxes, PresentSBox)
		} else {
			boxes = append(boxes, SpongentSBox)
		}
	}
	for i := 0; i < n3; i++ {
		boxes = append(boxes, Cube3SBox)
	}
	// Shuffle so 3-bit boxes are not always at the top of the state.
	r.Shuffle(len(boxes), func(i, j int) { boxes[i], boxes[j] = boxes[j], boxes[i] })
	return Layer{Kind: LayerSub, Boxes: boxes}, true
}

// makePermLayer builds a displacement-bounded random permutation (each wire
// moves at most maxCross positions, respecting the crossover budget).
func makePermLayer(w, maxCross int, r *rng.Rand) Layer {
	perm := make([]int, w)
	for i := range perm {
		perm[i] = i
	}
	if maxCross < 1 {
		maxCross = 1
	}
	// Bounded Fisher-Yates: swap i with a partner within the window.
	for i := w - 1; i > 0; i-- {
		lo := i - maxCross
		if lo < 0 {
			lo = 0
		}
		j := lo + r.Intn(i-lo+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return Layer{Kind: LayerPerm, Perm: perm}
}

// makeCompressLayer XOR-folds w bits down to out bits with the given input
// fan-out: every input bit feeds `fanout` distinct XOR trees, dealt
// round-robin over independent random permutations so group sizes differ by
// at most one — the non-invertible C-S box structure of §V-A. Duplicate
// placements (which would cancel under XOR) are skipped forward.
func makeCompressLayer(w, out, fanout int, r *rng.Rand) Layer {
	groups := make([][]int, out)
	contains := func(g []int, v int) bool {
		for _, x := range g {
			if x == v {
				return true
			}
		}
		return false
	}
	for f := 0; f < fanout; f++ {
		order := r.Perm(w)
		for i, src := range order {
			g := (i + f) % out
			for contains(groups[g], src) {
				g = (g + 1) % out
			}
			groups[g] = append(groups[g], src)
		}
	}
	// Uniform fan-out makes the group-membership matrix rank-deficient
	// over GF(2) when the fan-out is even (the XOR of all rows is zero),
	// which would confine outputs to a linear subspace and wreck C2.
	// Perturb single inputs into extra groups until the matrix has full
	// row rank.
	for attempt := 0; attempt < 8*out && compressRank(groups, w) < out; attempt++ {
		src := r.Intn(w)
		g := r.Intn(out)
		if !contains(groups[g], src) {
			groups[g] = append(groups[g], src)
		}
	}
	return Layer{Kind: LayerCompress, Groups: groups}
}

// compressRank returns the GF(2) rank of the out×w group-membership matrix.
// Columns are represented as bitmasks of the groups containing each input.
func compressRank(groups [][]int, w int) int {
	cols := make([]uint32, w)
	for g, members := range groups {
		for _, src := range members {
			cols[src] |= 1 << uint(g)
		}
	}
	rank := 0
	for bit := 0; bit < len(groups); bit++ {
		pivot := -1
		for i := rank; i < len(cols); i++ {
			if cols[i]&(1<<uint(bit)) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		cols[rank], cols[pivot] = cols[pivot], cols[rank]
		for i := 0; i < len(cols); i++ {
			if i != rank && cols[i]&(1<<uint(bit)) != 0 {
				cols[i] ^= cols[rank]
			}
		}
		rank++
		if rank == len(groups) {
			break
		}
	}
	return rank
}
