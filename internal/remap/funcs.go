package remap

import (
	"fmt"
	"sync"
)

// Field widths of the STBPU remapping interface (paper Table II and the
// Skylake-style baseline of §II-A).
const (
	// BTB geometry: 4096 entries, 8 ways -> 512 sets.
	BTBIndexBits  = 9
	BTBTagBits    = 8
	BTBOffsetBits = 5
	// PHT geometry: 2^14 sets, direct-mapped saturating counters.
	PHTIndexBits = 14
	// GHR bits hashed into the 2-level PHT lookup (STBPU input column).
	GHRBits = 16
	// BHB width feeding the indirect-target tag (R2).
	BHBBits = 58
	// Source address bits: full 48-bit virtual addresses, unlike the
	// truncated 32-bit legacy inputs (prevents same-address-space
	// collisions, §IV-B).
	SourceBits = 48
	// PsiBits is the keyed half of the secret token used for remapping.
	PsiBits = 32
	// TAGE bank interface maxima (10/13 index, 8/12 tag per Table II).
	TageMaxIndexBits = 13
	TageMaxTagBits   = 12
	// Perceptron table index width.
	PerceptronIndexBits = 10
)

// Funcs is the remapping interface the STBPU hardware exposes to the
// predictor structures. ψ (psi) is the keyed half of the current secret
// token; s is the 48-bit branch virtual address.
//
// The two implementations are NewCircuitFuncs (bit-accurate generated
// circuits) and NewMixer (fast software-equivalent; simulator default).
type Funcs interface {
	// R1 computes the BTB set index, tag, and offset (mode-one lookup).
	R1(psi uint32, s uint64) (ind, tag, offs uint32)
	// R2 computes the BTB tag for mode-two (BHB-indexed indirect) lookups.
	R2(psi uint32, bhb uint64) uint32
	// R3 computes the 1-level PHT index.
	R3(psi uint32, s uint64) uint32
	// R4 computes the 2-level PHT index from the GHR and address.
	R4(psi uint32, ghr uint16, s uint64) uint32
	// Rt computes a TAGE bank index/tag from folded history; indBits and
	// tagBits select the bank geometry (≤13/≤12).
	Rt(psi uint32, s, foldedHist uint64, indBits, tagBits uint) (ind, tag uint32)
	// Rp computes the Perceptron table index.
	Rp(psi uint32, s uint64) uint32
}

// TableIIRow documents one row of the paper's Table II.
type TableIIRow struct {
	Name           string
	BaselineInBits int
	STBPUInBits    int
	OutBits        int
	OutDesc        string
}

// TableII returns the I/O bit accounting of the baseline and STBPU
// remapping functions exactly as the paper's Table II lists them.
func TableII() []TableIIRow {
	return []TableIIRow{
		{"R1", 32, PsiBits + SourceBits, BTBIndexBits + BTBTagBits + BTBOffsetBits, "9 ind, 8 tag, 5 offs"},
		{"R2", BHBBits, PsiBits + BHBBits, BTBTagBits, "8 tag"},
		{"R3", 32, PsiBits + SourceBits, PHTIndexBits, "14 ind"},
		{"R4", 18 + 32, PsiBits + GHRBits + SourceBits, PHTIndexBits, "14 ind"},
		{"Rt", SourceBits, PsiBits + SourceBits + GHRBits, TageMaxIndexBits + TageMaxTagBits, "10/13 ind, 8/12 tag"},
		{"Rp", SourceBits, PsiBits + SourceBits, PerceptronIndexBits, "10 ind"},
	}
}

// ---------------------------------------------------------------------------
// Mixer: fast keyed backend.

// Mixer implements Funcs with a keyed xor-multiply finalizer per function.
// Each function uses a distinct domain-separation constant so R1..Rp are
// independent even under the same ψ. It satisfies C2/C3 statistically
// (validated in tests with the same Evaluate harness as the circuits) and
// is the hot-loop default.
type Mixer struct{}

// NewMixer returns the fast remapping backend.
func NewMixer() Mixer { return Mixer{} }

var _ Funcs = Mixer{}

// mix64 is a strengthened SplitMix64-style finalizer over three words.
func mix64(dom, a, b uint64) uint64 {
	h := dom ^ 0x9e3779b97f4a7c15
	h = (h ^ a) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	h = (h ^ b) * 0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xff51afd7ed558ccd
	h ^= h >> 32
	return h
}

// R1 implements Funcs.
func (Mixer) R1(psi uint32, s uint64) (ind, tag, offs uint32) {
	h := mix64(0x5b1, uint64(psi), s&vaMask48)
	ind = uint32(h) & (1<<BTBIndexBits - 1)
	tag = uint32(h>>BTBIndexBits) & (1<<BTBTagBits - 1)
	offs = uint32(h>>(BTBIndexBits+BTBTagBits)) & (1<<BTBOffsetBits - 1)
	return ind, tag, offs
}

// R2 implements Funcs.
func (Mixer) R2(psi uint32, bhb uint64) uint32 {
	h := mix64(0x5b2, uint64(psi), bhb&(1<<BHBBits-1))
	return uint32(h) & (1<<BTBTagBits - 1)
}

// R3 implements Funcs.
func (Mixer) R3(psi uint32, s uint64) uint32 {
	h := mix64(0x5b3, uint64(psi), s&vaMask48)
	return uint32(h) & (1<<PHTIndexBits - 1)
}

// R4 implements Funcs.
func (Mixer) R4(psi uint32, ghr uint16, s uint64) uint32 {
	h := mix64(0x5b4, uint64(psi)|uint64(ghr)<<32, s&vaMask48)
	return uint32(h) & (1<<PHTIndexBits - 1)
}

// Rt implements Funcs.
func (Mixer) Rt(psi uint32, s, foldedHist uint64, indBits, tagBits uint) (ind, tag uint32) {
	h := mix64(0x5b7, uint64(psi)^foldedHist<<16, s&vaMask48)
	ind = uint32(h) & (1<<indBits - 1)
	tag = uint32(h>>32) & (1<<tagBits - 1)
	return ind, tag
}

// Rp implements Funcs.
func (Mixer) Rp(psi uint32, s uint64) uint32 {
	h := mix64(0x5b9, uint64(psi), s&vaMask48)
	return uint32(h) & (1<<PerceptronIndexBits - 1)
}

const vaMask48 = 1<<SourceBits - 1

// ---------------------------------------------------------------------------
// CircuitSet: bit-accurate generated backend.

// CircuitSet implements Funcs by evaluating generated hardware circuits.
type CircuitSet struct {
	R1c, R2c, R3c, R4c, Rtc, Rpc *Circuit
}

var _ Funcs = (*CircuitSet)(nil)

// circuitSpecs defines the generator configuration for each shipped
// function (widths per Table II's STBPU column).
func circuitSpecs() []GenConfig {
	return []GenConfig{
		{Name: "R1", InBits: PsiBits + SourceBits, OutBits: BTBIndexBits + BTBTagBits + BTBOffsetBits},
		{Name: "R2", InBits: PsiBits + BHBBits, OutBits: BTBTagBits},
		{Name: "R3", InBits: PsiBits + SourceBits, OutBits: PHTIndexBits},
		{Name: "R4", InBits: PsiBits + GHRBits + SourceBits, OutBits: PHTIndexBits},
		{Name: "Rt", InBits: PsiBits + SourceBits + GHRBits, OutBits: TageMaxIndexBits + TageMaxTagBits},
		{Name: "Rp", InBits: PsiBits + SourceBits, OutBits: PerceptronIndexBits},
	}
}

// GenerateSet runs the generator for all six functions with the provided
// overrides applied to every spec (zero-value fields keep defaults).
func GenerateSet(candidates, samples int, seed uint64) (*CircuitSet, error) {
	var set CircuitSet
	slots := map[string]**Circuit{
		"R1": &set.R1c, "R2": &set.R2c, "R3": &set.R3c,
		"R4": &set.R4c, "Rt": &set.Rtc, "Rp": &set.Rpc,
	}
	for _, spec := range circuitSpecs() {
		spec.Candidates = candidates
		spec.Samples = samples
		if seed != 0 {
			spec.Seed = seed ^ uint64(len(spec.Name))<<32 ^ uint64(spec.InBits)
		}
		c, _, err := Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("remap: generating %s: %w", spec.Name, err)
		}
		*slots[spec.Name] = c
	}
	return &set, nil
}

var (
	defaultSetOnce sync.Once
	defaultSet     *CircuitSet
	defaultSetErr  error
)

// DefaultCircuitSet returns the lazily generated shipped circuit set
// (fixed seed, light validation — full validation lives in tests and the
// remapgen CLI).
func DefaultCircuitSet() (*CircuitSet, error) {
	defaultSetOnce.Do(func() {
		defaultSet, defaultSetErr = GenerateSet(3, 256, 0x57b9_0001)
	})
	return defaultSet, defaultSetErr
}

// R1 implements Funcs.
func (cs *CircuitSet) R1(psi uint32, s uint64) (ind, tag, offs uint32) {
	out := cs.R1c.Eval(PackInputs(
		FieldSpec{uint64(psi), PsiBits},
		FieldSpec{s & vaMask48, SourceBits},
	))
	ind = out.Field(0, BTBIndexBits)
	tag = out.Field(BTBIndexBits, BTBTagBits)
	offs = out.Field(BTBIndexBits+BTBTagBits, BTBOffsetBits)
	return ind, tag, offs
}

// R2 implements Funcs.
func (cs *CircuitSet) R2(psi uint32, bhb uint64) uint32 {
	out := cs.R2c.Eval(PackInputs(
		FieldSpec{uint64(psi), PsiBits},
		FieldSpec{bhb & (1<<BHBBits - 1), BHBBits},
	))
	return out.Field(0, BTBTagBits)
}

// R3 implements Funcs.
func (cs *CircuitSet) R3(psi uint32, s uint64) uint32 {
	out := cs.R3c.Eval(PackInputs(
		FieldSpec{uint64(psi), PsiBits},
		FieldSpec{s & vaMask48, SourceBits},
	))
	return out.Field(0, PHTIndexBits)
}

// R4 implements Funcs.
func (cs *CircuitSet) R4(psi uint32, ghr uint16, s uint64) uint32 {
	out := cs.R4c.Eval(PackInputs(
		FieldSpec{uint64(psi), PsiBits},
		FieldSpec{uint64(ghr), GHRBits},
		FieldSpec{s & vaMask48, SourceBits},
	))
	return out.Field(0, PHTIndexBits)
}

// Rt implements Funcs.
func (cs *CircuitSet) Rt(psi uint32, s, foldedHist uint64, indBits, tagBits uint) (ind, tag uint32) {
	out := cs.Rtc.Eval(PackInputs(
		FieldSpec{uint64(psi), PsiBits},
		FieldSpec{s & vaMask48, SourceBits},
		FieldSpec{foldedHist & (1<<GHRBits - 1), GHRBits},
	))
	ind = out.Field(0, TageMaxIndexBits) & (1<<indBits - 1)
	tag = out.Field(TageMaxIndexBits, TageMaxTagBits) & (1<<tagBits - 1)
	return ind, tag
}

// Rp implements Funcs.
func (cs *CircuitSet) Rp(psi uint32, s uint64) uint32 {
	out := cs.Rpc.Eval(PackInputs(
		FieldSpec{uint64(psi), PsiBits},
		FieldSpec{s & vaMask48, SourceBits},
	))
	return out.Field(0, PerceptronIndexBits)
}
