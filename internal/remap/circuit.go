package remap

import (
	"fmt"
)

// LayerKind enumerates the primitive categories of §V-A: mixing primitives
// (substitution and permutation) and non-invertible compression primitives.
type LayerKind uint8

const (
	// LayerSub applies S-boxes over fixed-width groups of the state.
	LayerSub LayerKind = iota
	// LayerPerm rewires state bits (P-box).
	LayerPerm
	// LayerCompress XORs groups of input bits down to single output bits
	// (C-S box): |m| -> |n| with |m| > |n|, non-invertible.
	LayerCompress
)

// String names the layer kind.
func (k LayerKind) String() string {
	switch k {
	case LayerSub:
		return "sub"
	case LayerPerm:
		return "perm"
	case LayerCompress:
		return "compress"
	default:
		return fmt.Sprintf("LayerKind(%d)", uint8(k))
	}
}

// Layer is one stage of a remapping circuit.
type Layer struct {
	Kind LayerKind

	// LayerSub: Boxes[i] substitutes group i. Groups tile the state from
	// bit 0 upward; each box consumes its Width bits. The tail group may
	// use a 3-bit box when the width is not a multiple of 4.
	Boxes []SBox

	// LayerPerm: Perm[i] gives the source bit of output bit i; it must be
	// a permutation of [0, width).
	Perm []int

	// LayerCompress: Groups[i] lists the input bit positions XORed into
	// output bit i. The layer narrows the state to len(Groups) bits.
	Groups [][]int
}

// Circuit is a complete remapping function candidate: a fixed-width input
// (key material concatenated with address/history bits) flowing through an
// ordered list of layers to a narrower output.
type Circuit struct {
	// Name labels the circuit in reports (e.g. "R1").
	Name string
	// InBits and OutBits are the interface widths (Table II).
	InBits, OutBits int
	// Layers is the stage list, applied in order.
	Layers []Layer
}

// widthAfter returns the state width after layer i (state narrows only at
// compression layers).
func (c *Circuit) widthAfter(i int) int {
	w := c.InBits
	for l := 0; l <= i && l < len(c.Layers); l++ {
		if c.Layers[l].Kind == LayerCompress {
			w = len(c.Layers[l].Groups)
		}
	}
	return w
}

// Validate checks structural well-formedness: layer widths chain correctly
// and the final width equals OutBits.
func (c *Circuit) Validate() error {
	if c.InBits <= 0 || c.InBits > MaxBits {
		return fmt.Errorf("remap: circuit %s: input width %d out of range", c.Name, c.InBits)
	}
	if c.OutBits <= 0 || c.OutBits > c.InBits {
		return fmt.Errorf("remap: circuit %s: output width %d invalid", c.Name, c.OutBits)
	}
	w := c.InBits
	for i, l := range c.Layers {
		switch l.Kind {
		case LayerSub:
			total := 0
			for _, b := range l.Boxes {
				if !b.IsBijective() {
					return fmt.Errorf("remap: circuit %s layer %d: non-bijective S-box %s", c.Name, i, b.Name)
				}
				total += b.Width
			}
			if total != w {
				return fmt.Errorf("remap: circuit %s layer %d: S-boxes cover %d of %d bits", c.Name, i, total, w)
			}
		case LayerPerm:
			if len(l.Perm) != w {
				return fmt.Errorf("remap: circuit %s layer %d: perm width %d != %d", c.Name, i, len(l.Perm), w)
			}
			seen := make([]bool, w)
			for _, src := range l.Perm {
				if src < 0 || src >= w || seen[src] {
					return fmt.Errorf("remap: circuit %s layer %d: invalid permutation", c.Name, i)
				}
				seen[src] = true
			}
		case LayerCompress:
			if len(l.Groups) >= w || len(l.Groups) == 0 {
				return fmt.Errorf("remap: circuit %s layer %d: compress %d -> %d is not a compression", c.Name, i, w, len(l.Groups))
			}
			for _, g := range l.Groups {
				if len(g) == 0 {
					return fmt.Errorf("remap: circuit %s layer %d: empty XOR group", c.Name, i)
				}
				for _, src := range g {
					if src < 0 || src >= w {
						return fmt.Errorf("remap: circuit %s layer %d: group source %d out of range", c.Name, i, src)
					}
				}
			}
			w = len(l.Groups)
		default:
			return fmt.Errorf("remap: circuit %s layer %d: unknown kind", c.Name, i)
		}
	}
	if w != c.OutBits {
		return fmt.Errorf("remap: circuit %s: final width %d != declared %d", c.Name, w, c.OutBits)
	}
	return nil
}

// Eval runs the circuit on an input vector (only the low InBits are used)
// and returns the output in the low OutBits.
func (c *Circuit) Eval(in Bits) Bits {
	state := in.Mask(c.InBits)
	w := c.InBits
	for li := range c.Layers {
		l := &c.Layers[li]
		switch l.Kind {
		case LayerSub:
			var out Bits
			off := 0
			for _, b := range l.Boxes {
				group := uint64(state.Field(off, b.Width))
				out = out.PutField(off, b.Width, b.apply(group))
				off += b.Width
			}
			state = out
		case LayerPerm:
			var out Bits
			for i, src := range l.Perm {
				out = out.Set(i, state.Get(src))
			}
			state = out
		case LayerCompress:
			var out Bits
			for i, g := range l.Groups {
				var v uint64
				for _, src := range g {
					v ^= state.Get(src)
				}
				out = out.Set(i, v)
			}
			state = out
			w = len(l.Groups)
		}
	}
	_ = w
	return state.Mask(c.OutBits)
}

// NumLayers returns the stage count, the generator's depth measure.
func (c *Circuit) NumLayers() int { return len(c.Layers) }

// String summarizes the circuit structure.
func (c *Circuit) String() string {
	s := fmt.Sprintf("%s(%d->%d):", c.Name, c.InBits, c.OutBits)
	w := c.InBits
	for _, l := range c.Layers {
		switch l.Kind {
		case LayerSub:
			s += fmt.Sprintf(" sub[%d]", len(l.Boxes))
		case LayerPerm:
			s += fmt.Sprintf(" perm[%d]", len(l.Perm))
		case LayerCompress:
			s += fmt.Sprintf(" cmp[%d->%d]", w, len(l.Groups))
			w = len(l.Groups)
		}
	}
	return s
}
