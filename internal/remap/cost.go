package remap

// Hardware cost model for constraint C1 (§V-A): the compute delay of a
// remapping function must fit in one clock cycle, which the paper bounds at
// 45 transistors along the critical path (15-20 gate levels × ~2-3
// transistors per level, with preference for shorter paths), alongside
// limits on breadth, total transistor count, and wire crossovers.
//
// Per-primitive constants follow standard static-CMOS realizations:
//
//   - 2-input XOR/XNOR: 8 transistors total, 3 on the critical path
//     (transmission-gate XOR).
//   - 4→4 optimal S-box (PRESENT/SPONGENT class): ~28 GE ≈ 112 transistors
//     total; two-level NOR/NAND network plus input inverters ≈ 8
//     transistors on the critical path.
//   - 3→3 S-box: ~14 GE ≈ 56 transistors total, 6 on the critical path.
//   - P-box: wiring only — zero transistors, but consumes the crossover
//     budget.
//   - k-input XOR compression tree: ceil(log2(k)) XOR levels deep.
//
// These constants make the paper's published R1 shape (three substitution
// stages interleaved with P-boxes and a compression tail) land at 36
// transistors of critical path, matching §V-B.

// CostModel carries the per-primitive constants; DefaultCostModel matches
// the discussion above. Hardware developers retarget by adjusting fields.
type CostModel struct {
	XorPath       int // critical-path transistors per 2-input XOR level
	XorTotal      int // total transistors per 2-input XOR
	SBox4Path     int
	SBox4Total    int
	SBox3Path     int
	SBox3Total    int
	CrossoverUnit int // crossover budget consumed per permuted wire
}

// DefaultCostModel is the calibration used throughout the reproduction.
var DefaultCostModel = CostModel{
	XorPath:       4,
	XorTotal:      8,
	SBox4Path:     8,
	SBox4Total:    112,
	SBox3Path:     6,
	SBox3Total:    56,
	CrossoverUnit: 1,
}

// Constraints is the C1 input to the generator (§V-A "Constraint Selection
// of C1" lists exactly these knobs).
type Constraints struct {
	// MaxCriticalPath bounds transistors on the critical path (≤45; the
	// paper prefers shorter).
	MaxCriticalPath int
	// MaxBreadth bounds transistors in parallel at any stage.
	MaxBreadth int
	// MaxTotal bounds total transistor count.
	MaxTotal int
	// MaxLayers bounds functional stages.
	MaxLayers int
	// MaxCrossover bounds how many wires any wire may cross.
	MaxCrossover int
}

// DefaultConstraints reflects §V-A: 45 transistors absolute maximum on the
// critical path, and generous but finite breadth/total/crossover budgets
// sized for the ≤128-bit datapaths of Table II.
var DefaultConstraints = Constraints{
	MaxCriticalPath: 45,
	MaxBreadth:      4096,
	MaxTotal:        16384,
	MaxLayers:       8,
	MaxCrossover:    128,
}

// Cost summarizes the hardware estimate of a circuit.
type Cost struct {
	CriticalPath int
	Breadth      int
	Total        int
	Layers       int
	MaxCrossover int
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	v, p := 0, 1
	for p < n {
		p <<= 1
		v++
	}
	return v
}

// Estimate computes the hardware cost of a circuit under the model.
func (m CostModel) Estimate(c *Circuit) Cost {
	var cost Cost
	cost.Layers = len(c.Layers)
	w := c.InBits
	for _, l := range c.Layers {
		switch l.Kind {
		case LayerSub:
			path, breadth, total := 0, 0, 0
			for _, b := range l.Boxes {
				if b.Width >= 4 {
					path = max(path, m.SBox4Path)
					breadth += m.SBox4Total
					total += m.SBox4Total
				} else {
					path = max(path, m.SBox3Path)
					breadth += m.SBox3Total
					total += m.SBox3Total
				}
			}
			cost.CriticalPath += path
			cost.Breadth = max(cost.Breadth, breadth)
			cost.Total += total
		case LayerPerm:
			// Wires only. Crossover estimate: displacement of each wire.
			maxCross := 0
			for i, src := range l.Perm {
				d := i - src
				if d < 0 {
					d = -d
				}
				maxCross = max(maxCross, d*m.CrossoverUnit)
			}
			cost.MaxCrossover = max(cost.MaxCrossover, maxCross)
		case LayerCompress:
			deepest, breadth, total := 0, 0, 0
			for _, g := range l.Groups {
				levels := log2ceil(len(g))
				deepest = max(deepest, levels)
				nxor := len(g) - 1
				if nxor < 0 {
					nxor = 0
				}
				breadth += nxor * m.XorTotal
				total += nxor * m.XorTotal
			}
			cost.CriticalPath += deepest * m.XorPath
			cost.Breadth = max(cost.Breadth, breadth)
			cost.Total += total
			w = len(l.Groups)
		}
	}
	_ = w
	return cost
}

// Satisfies reports whether the cost meets the constraints, and if not,
// which budget is violated.
func (c Cost) Satisfies(k Constraints) error {
	switch {
	case c.CriticalPath > k.MaxCriticalPath:
		return errBudget("critical path", c.CriticalPath, k.MaxCriticalPath)
	case c.Breadth > k.MaxBreadth:
		return errBudget("breadth", c.Breadth, k.MaxBreadth)
	case c.Total > k.MaxTotal:
		return errBudget("total transistors", c.Total, k.MaxTotal)
	case c.Layers > k.MaxLayers:
		return errBudget("layers", c.Layers, k.MaxLayers)
	case c.MaxCrossover > k.MaxCrossover:
		return errBudget("wire crossover", c.MaxCrossover, k.MaxCrossover)
	}
	return nil
}

type budgetError struct {
	what       string
	got, limit int
}

func (e *budgetError) Error() string {
	return "remap: " + e.what + " budget exceeded"
}

func errBudget(what string, got, limit int) error {
	return &budgetError{what: what, got: got, limit: limit}
}
