package remap

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"stbpu/internal/rng"
)

var (
	testCircuitOnce sync.Once
	testCircuit     *Circuit
	testCircuitErr  error
)

// genTestCircuit produces a valid generated circuit for serialization
// tests. Generation costs seconds, so the (deterministic, read-only)
// circuit is built once and shared across tests.
func genTestCircuit(t *testing.T) *Circuit {
	t.Helper()
	testCircuitOnce.Do(func() {
		cfg := GenConfig{InBits: 40, OutBits: 14, Seed: 99}
		testCircuit, _, testCircuitErr = Generate(cfg)
	})
	if testCircuitErr != nil {
		t.Fatalf("generate: %v", testCircuitErr)
	}
	return testCircuit
}

func TestCircuitMarshalRoundTrip(t *testing.T) {
	c := genTestCircuit(t)
	text, err := c.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Circuit
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, text)
	}
	if back.Name != c.Name || back.InBits != c.InBits || back.OutBits != c.OutBits {
		t.Fatalf("header mismatch: %+v vs %+v", back, c)
	}
	if len(back.Layers) != len(c.Layers) {
		t.Fatalf("layer count: %d vs %d", len(back.Layers), len(c.Layers))
	}
	// Functional equivalence over a sample: same outputs for same inputs.
	r := rng.New(5)
	for i := 0; i < 500; i++ {
		in := randomInput(r, c.InBits)
		a := c.Eval(in)
		b := back.Eval(in)
		if a != b {
			t.Fatalf("round-tripped circuit diverges on input %d", i)
		}
	}
}

func TestCircuitMarshalRejectsInvalid(t *testing.T) {
	bad := &Circuit{Name: "X", InBits: 8, OutBits: 16} // widens: invalid
	if _, err := bad.MarshalText(); err == nil {
		t.Error("marshal accepted an invalid circuit")
	}
}

func TestCircuitUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",
		"not a circuit\nend\n",
		"circuit X in=8 out=4\n", // missing end
		"circuit X in=8 out=4\nbogus\nend\n",
		"circuit X in=8 out=4\nsub 4:NOSUCHBOX\nend\n",
		"circuit X in=8 out=4\nperm 0 1 2 zz\nend\n",
		"circuit X in=8 out=4\ncompress 0,qq\nend\n",
		// Structurally parseable but invalid circuit (perm not a
		// permutation of the width).
		"circuit X in=8 out=4\nperm 0 0 0 0 0 0 0 0\nend\n",
	}
	for i, text := range cases {
		var c Circuit
		if err := c.UnmarshalText([]byte(text)); err == nil {
			t.Errorf("case %d: unmarshal accepted %q", i, text)
		}
	}
}

func TestNetlistRendersAllLayers(t *testing.T) {
	c := genTestCircuit(t)
	var buf bytes.Buffer
	if err := c.WriteNetlist(&buf); err != nil {
		t.Fatal(err)
	}
	nl := buf.String()
	if !strings.Contains(nl, "module "+strings.ToLower(c.Name)) {
		t.Error("netlist missing top module")
	}
	for _, l := range c.Layers {
		switch l.Kind {
		case LayerSub:
			if !strings.Contains(nl, "substitution layer") {
				t.Error("netlist missing substitution layer")
			}
		case LayerPerm:
			if !strings.Contains(nl, "permutation layer") {
				t.Error("netlist missing permutation layer")
			}
		case LayerCompress:
			if !strings.Contains(nl, "compression layer") {
				t.Error("netlist missing compression layer")
			}
		}
	}
	// Every S-box used must have its LUT module emitted.
	for _, l := range c.Layers {
		for _, box := range l.Boxes {
			if !strings.Contains(nl, "module sbox_"+strings.ToLower(box.Name)) {
				t.Errorf("netlist missing sbox module %s", box.Name)
			}
		}
	}
	if strings.Count(nl, "endmodule") < 2 {
		t.Error("expected top module plus at least one sbox module")
	}
}

func TestNetlistRejectsInvalid(t *testing.T) {
	bad := &Circuit{Name: "X", InBits: 8, OutBits: 16}
	if err := bad.WriteNetlist(&bytes.Buffer{}); err == nil {
		t.Error("netlist accepted an invalid circuit")
	}
}
