package remap

import (
	"testing"
	"testing/quick"

	"stbpu/internal/rng"
)

func TestBitsFieldRoundTrip(t *testing.T) {
	f := func(v uint64, offRaw, widthRaw uint8) bool {
		width := int(widthRaw)%32 + 1
		off := int(offRaw) % (MaxBits - width)
		var b Bits
		val := v & (1<<uint(width) - 1)
		b = b.PutField(off, width, val)
		return uint64(b.Field(off, width)) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsSetGetFlip(t *testing.T) {
	var b Bits
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		b = b.Set(i, 1)
		if b.Get(i) != 1 {
			t.Errorf("bit %d not set", i)
		}
		b = b.Flip(i)
		if b.Get(i) != 0 {
			t.Errorf("bit %d not flipped", i)
		}
	}
}

func TestBitsMask(t *testing.T) {
	b := Bits{^uint64(0), ^uint64(0)}
	cases := []struct {
		n    int
		want int // OnesCount after mask
	}{
		{0, 0}, {1, 1}, {63, 63}, {64, 64}, {65, 65}, {127, 127}, {128, 128}, {200, 128},
	}
	for _, c := range cases {
		if got := b.Mask(c.n).OnesCount(); got != c.want {
			t.Errorf("Mask(%d).OnesCount() = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBitsXorOnesCount(t *testing.T) {
	a := BitsFrom(0b1100)
	b := BitsFrom(0b1010)
	if got := a.Xor(b).OnesCount(); got != 2 {
		t.Errorf("Xor.OnesCount = %d, want 2", got)
	}
}

func TestPackInputs(t *testing.T) {
	b := PackInputs(
		FieldSpec{0xA, 4},
		FieldSpec{0x3, 2},
		FieldSpec{0x1FF, 9},
	)
	if got := b.Field(0, 4); got != 0xA {
		t.Errorf("field0 = %#x", got)
	}
	if got := b.Field(4, 2); got != 0x3 {
		t.Errorf("field1 = %#x", got)
	}
	if got := b.Field(6, 9); got != 0x1FF {
		t.Errorf("field2 = %#x", got)
	}
}

func TestPackInputsPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackInputs(FieldSpec{0, 100}, FieldSpec{0, 100})
}

func TestSBoxesBijective(t *testing.T) {
	for _, s := range AllSBoxes {
		if !s.IsBijective() {
			t.Errorf("S-box %s is not bijective", s.Name)
		}
		if len(s.Table) != 1<<uint(s.Width) {
			t.Errorf("S-box %s table size %d", s.Name, len(s.Table))
		}
	}
	bad := SBox{Name: "bad", Width: 2, Table: []uint8{0, 0, 1, 2}}
	if bad.IsBijective() {
		t.Error("non-bijective S-box accepted")
	}
}

// handCircuit builds a tiny known-good circuit: 8 -> 4 bits.
func handCircuit() *Circuit {
	return &Circuit{
		Name:   "hand",
		InBits: 8, OutBits: 4,
		Layers: []Layer{
			{Kind: LayerSub, Boxes: []SBox{PresentSBox, SpongentSBox}},
			{Kind: LayerPerm, Perm: []int{7, 6, 5, 4, 3, 2, 1, 0}},
			{Kind: LayerCompress, Groups: [][]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}}},
		},
	}
}

func TestCircuitValidateAccepts(t *testing.T) {
	if err := handCircuit().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitValidateRejects(t *testing.T) {
	cases := []func(*Circuit){
		func(c *Circuit) { c.InBits = 0 },
		func(c *Circuit) { c.OutBits = 0 },
		func(c *Circuit) { c.OutBits = 9 },
		func(c *Circuit) { c.Layers[0].Boxes = c.Layers[0].Boxes[:1] },        // partial coverage
		func(c *Circuit) { c.Layers[1].Perm = []int{0, 0, 1, 2, 3, 4, 5, 6} }, // not a permutation
		func(c *Circuit) { c.Layers[2].Groups = c.Layers[2].Groups[:3] },      // wrong final width
		func(c *Circuit) { c.Layers[2].Groups[0] = []int{99} },                // out of range
		func(c *Circuit) { c.Layers[2].Groups[0] = nil },                      // empty group
	}
	for i, mutate := range cases {
		c := handCircuit()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid circuit accepted", i)
		}
	}
}

func TestCircuitEvalKnownValues(t *testing.T) {
	c := handCircuit()
	// Manually trace input 0x00: sub -> PRESENT(0)=0xC low, SPONGENT(0)=0xE
	// high => state 0xEC; perm reverses bits => 0x37; compress XORs
	// (b0^b4, b1^b5, b2^b6, b3^b7) of 0x37 = 0011 0111:
	// bits: 1,1,1,0,1,1,0,0 -> out bits: 1^1, 1^1, 1^0, 0^0 = 0,0,1,0 = 0x4.
	got := c.Eval(BitsFrom(0)).Low()
	if got != 0x4 {
		t.Errorf("Eval(0) = %#x, want 0x4", got)
	}
}

func TestCircuitEvalDeterministic(t *testing.T) {
	c := handCircuit()
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		in := BitsFrom(r.Uint64()).Mask(8)
		if c.Eval(in) != c.Eval(in) {
			t.Fatal("Eval is not deterministic")
		}
	}
}

func TestCostModelEstimates(t *testing.T) {
	c := handCircuit()
	cost := DefaultCostModel.Estimate(c)
	// One sub layer (8 path) + compress of 2-input groups (1 level, 4 path).
	if cost.CriticalPath != 12 {
		t.Errorf("CriticalPath = %d, want 12", cost.CriticalPath)
	}
	if cost.Layers != 3 {
		t.Errorf("Layers = %d", cost.Layers)
	}
	if cost.Total == 0 || cost.Breadth == 0 {
		t.Error("zero totals")
	}
	if err := cost.Satisfies(DefaultConstraints); err != nil {
		t.Errorf("hand circuit violates default constraints: %v", err)
	}
}

func TestCostSatisfiesViolations(t *testing.T) {
	c := Cost{CriticalPath: 100}
	if err := c.Satisfies(DefaultConstraints); err == nil {
		t.Error("critical path violation accepted")
	}
	c = Cost{Layers: 99}
	if err := c.Satisfies(DefaultConstraints); err == nil {
		t.Error("layer violation accepted")
	}
}

func TestGenerateMeetsConstraints(t *testing.T) {
	for i, spec := range circuitSpecs() {
		if testing.Short() && i > 0 {
			break // one spec covers the generator path; the sweep is slow
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			spec.Candidates = 3
			spec.Samples = 128
			c, q, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			cost := DefaultCostModel.Estimate(c)
			if err := cost.Satisfies(DefaultConstraints); err != nil {
				t.Fatalf("constraint violation: %v (cost %+v)", err, cost)
			}
			if cost.CriticalPath > 45 {
				t.Errorf("critical path %d > 45", cost.CriticalPath)
			}
			if q.Score() > 1.0 {
				t.Errorf("poor quality: %+v", q)
			}
		})
	}
}

func TestGenerateDeterministicWithSeed(t *testing.T) {
	cfg := GenConfig{Name: "R3", InBits: 80, OutBits: 14, Candidates: 2, Samples: 64, Seed: 42}
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed produced different circuits:\n%s\n%s", a, b)
	}
}

func TestGenerateRejectsBadWidths(t *testing.T) {
	if _, _, err := Generate(GenConfig{Name: "x", InBits: 8, OutBits: 8}); err == nil {
		t.Error("out == in accepted")
	}
	if _, _, err := Generate(GenConfig{Name: "x", InBits: 300, OutBits: 8}); err == nil {
		t.Error("too-wide input accepted")
	}
}

// mixerAsBitsFunc adapts one Mixer function for the Evaluate harness.
func mixerR1AsBitsFunc() (func(Bits) Bits, int, int) {
	m := NewMixer()
	f := func(in Bits) Bits {
		psi := in.Field(0, PsiBits)
		s := uint64(in.Field(PsiBits, 24)) | uint64(in.Field(PsiBits+24, 24))<<24
		ind, tag, offs := m.R1(psi, s)
		var out Bits
		out = out.PutField(0, BTBIndexBits, uint64(ind))
		out = out.PutField(BTBIndexBits, BTBTagBits, uint64(tag))
		out = out.PutField(BTBIndexBits+BTBTagBits, BTBOffsetBits, uint64(offs))
		return out
	}
	return f, PsiBits + SourceBits, BTBIndexBits + BTBTagBits + BTBOffsetBits
}

func TestMixerQuality(t *testing.T) {
	f, in, out := mixerR1AsBitsFunc()
	q := Evaluate(f, in, out, 256, rng.New(7))
	if !q.Passes(0.12) {
		t.Errorf("mixer R1 fails C2/C3: %+v", q)
	}
}

func TestCircuitQualityFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full circuit validation is slow")
	}
	set, err := DefaultCircuitSet()
	if err != nil {
		t.Fatal(err)
	}
	q := EvaluateCircuit(set.R1c, 512, rng.New(11))
	if !q.Passes(0.15) {
		t.Errorf("shipped R1 circuit fails C2/C3: %+v", q)
	}
}

func TestDefaultCircuitSetComplete(t *testing.T) {
	set, err := DefaultCircuitSet()
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*Circuit{
		"R1": set.R1c, "R2": set.R2c, "R3": set.R3c,
		"R4": set.R4c, "Rt": set.Rtc, "Rp": set.Rpc,
	} {
		if c == nil {
			t.Fatalf("circuit %s missing", name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("circuit %s: %v", name, err)
		}
	}
}

func TestFuncsKeyedBehaviour(t *testing.T) {
	// Different ψ must remap the same address differently (the whole point
	// of STBPU), for both backends.
	backends := map[string]Funcs{"mixer": NewMixer()}
	if set, err := DefaultCircuitSet(); err == nil {
		backends["circuit"] = set
	}
	for name, f := range backends {
		t.Run(name, func(t *testing.T) {
			const addr = 0x00007f1234567890 & vaMask48
			diff := 0
			for psi := uint32(1); psi <= 64; psi++ {
				i0, t0, o0 := f.R1(0, addr)
				i1, t1, o1 := f.R1(psi, addr)
				if i0 != i1 || t0 != t1 || o0 != o1 {
					diff++
				}
			}
			if diff < 60 {
				t.Errorf("only %d/64 keys changed the R1 mapping", diff)
			}
		})
	}
}

func TestFuncsOutputRanges(t *testing.T) {
	backends := map[string]Funcs{"mixer": NewMixer()}
	if set, err := DefaultCircuitSet(); err == nil {
		backends["circuit"] = set
	}
	r := rng.New(3)
	for name, f := range backends {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 500; i++ {
				psi := r.Uint32()
				s := r.Uint64() & vaMask48
				ind, tag, offs := f.R1(psi, s)
				if ind >= 1<<BTBIndexBits || tag >= 1<<BTBTagBits || offs >= 1<<BTBOffsetBits {
					t.Fatalf("R1 out of range: %d %d %d", ind, tag, offs)
				}
				if v := f.R2(psi, r.Uint64()); v >= 1<<BTBTagBits {
					t.Fatalf("R2 out of range: %d", v)
				}
				if v := f.R3(psi, s); v >= 1<<PHTIndexBits {
					t.Fatalf("R3 out of range: %d", v)
				}
				if v := f.R4(psi, uint16(r.Uint32()), s); v >= 1<<PHTIndexBits {
					t.Fatalf("R4 out of range: %d", v)
				}
				ti, tt := f.Rt(psi, s, r.Uint64(), 10, 8)
				if ti >= 1<<10 || tt >= 1<<8 {
					t.Fatalf("Rt out of range: %d %d", ti, tt)
				}
				if v := f.Rp(psi, s); v >= 1<<PerceptronIndexBits {
					t.Fatalf("Rp out of range: %d", v)
				}
			}
		})
	}
}

func TestTableIIWidths(t *testing.T) {
	rows := TableII()
	if len(rows) != 6 {
		t.Fatalf("TableII has %d rows, want 6", len(rows))
	}
	want := map[string][2]int{
		"R1": {80, 22},
		"R2": {90, 8},
		"R3": {80, 14},
		"R4": {96, 14},
		"Rt": {96, 25},
		"Rp": {80, 10},
	}
	for _, row := range rows {
		w, ok := want[row.Name]
		if !ok {
			t.Errorf("unexpected row %s", row.Name)
			continue
		}
		if row.STBPUInBits != w[0] || row.OutBits != w[1] {
			t.Errorf("%s: %d->%d, want %d->%d", row.Name, row.STBPUInBits, row.OutBits, w[0], w[1])
		}
	}
	// Generated circuits must match the declared interface widths.
	set, err := DefaultCircuitSet()
	if err != nil {
		t.Fatal(err)
	}
	circuits := map[string]*Circuit{
		"R1": set.R1c, "R2": set.R2c, "R3": set.R3c,
		"R4": set.R4c, "Rt": set.Rtc, "Rp": set.Rpc,
	}
	for _, row := range rows {
		c := circuits[row.Name]
		if c.InBits != row.STBPUInBits || c.OutBits != row.OutBits {
			t.Errorf("circuit %s is %d->%d, Table II says %d->%d",
				row.Name, c.InBits, c.OutBits, row.STBPUInBits, row.OutBits)
		}
	}
}

func TestLayerKindString(t *testing.T) {
	if LayerSub.String() != "sub" || LayerPerm.String() != "perm" || LayerCompress.String() != "compress" {
		t.Error("layer kind names wrong")
	}
	if LayerKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func BenchmarkMixerR1(b *testing.B) {
	m := NewMixer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		ind, _, _ := m.R1(0xdeadbeef, uint64(i)*64)
		sink += ind
	}
	_ = sink
}

func BenchmarkCircuitR1(b *testing.B) {
	set, err := DefaultCircuitSet()
	if err != nil {
		b.Fatal(err)
	}
	var sink uint32
	for i := 0; i < b.N; i++ {
		ind, _, _ := set.R1(0xdeadbeef, uint64(i)*64)
		sink += ind
	}
	_ = sink
}

func BenchmarkRemapGenerator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := GenConfig{Name: "R1", InBits: 80, OutBits: 22, Candidates: 1, Samples: 64, Seed: uint64(i) + 1}
		if _, _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
