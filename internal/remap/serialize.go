package remap

// serialize.go gives generated circuits a durable text form: §V-B ends
// with the generator handing its selected functions to "hardware
// developers for a specific CPU design", which requires the circuit to
// leave the process. The format is line-oriented and diff-friendly:
//
//	circuit R1 in=80 out=22
//	sub 4:PRESENT 4:PRESENT 3:CUBE3 ...
//	perm 3 0 1 2 ...
//	compress 0,5,9 1,6 ...
//	end
//
// MarshalText/UnmarshalText round-trip exactly; Netlist renders the same
// circuit as a flat gate-level netlist for synthesis handoff.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MarshalText implements encoding.TextMarshaler.
func (c *Circuit) MarshalText() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("remap: refusing to marshal invalid circuit: %w", err)
	}
	var b bytes.Buffer
	name := c.Name
	if name == "" {
		name = "_" // sentinel for the unnamed case; round-trips to ""
	}
	fmt.Fprintf(&b, "circuit %s in=%d out=%d\n", name, c.InBits, c.OutBits)
	for _, l := range c.Layers {
		switch l.Kind {
		case LayerSub:
			b.WriteString("sub")
			for _, box := range l.Boxes {
				fmt.Fprintf(&b, " %d:%s", box.Width, box.Name)
			}
			b.WriteByte('\n')
		case LayerPerm:
			b.WriteString("perm")
			for _, src := range l.Perm {
				fmt.Fprintf(&b, " %d", src)
			}
			b.WriteByte('\n')
		case LayerCompress:
			b.WriteString("compress")
			for _, group := range l.Groups {
				b.WriteByte(' ')
				for j, bit := range group {
					if j > 0 {
						b.WriteByte(',')
					}
					b.WriteString(strconv.Itoa(bit))
				}
			}
			b.WriteByte('\n')
		default:
			return nil, fmt.Errorf("remap: unknown layer kind %d", l.Kind)
		}
	}
	b.WriteString("end\n")
	return b.Bytes(), nil
}

// boxByName resolves an S-box primitive by its registered name and width.
func boxByName(width int, name string) (SBox, error) {
	for _, box := range AllSBoxes {
		if box.Name == name && box.Width == width {
			return box, nil
		}
	}
	return SBox{}, fmt.Errorf("remap: unknown S-box %d:%s", width, name)
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *Circuit) UnmarshalText(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		return fmt.Errorf("remap: empty circuit text")
	}
	hdr := strings.Fields(sc.Text())
	if len(hdr) != 4 || hdr[0] != "circuit" ||
		!strings.HasPrefix(hdr[2], "in=") || !strings.HasPrefix(hdr[3], "out=") {
		return fmt.Errorf("remap: bad circuit header %q", sc.Text())
	}
	in, err1 := strconv.Atoi(hdr[2][3:])
	out, err2 := strconv.Atoi(hdr[3][4:])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("remap: bad circuit header %q", sc.Text())
	}
	name := hdr[1]
	if name == "_" {
		name = ""
	}
	parsed := Circuit{Name: name, InBits: in, OutBits: out}

	ended := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "end":
			ended = true
		case "sub":
			var l Layer
			l.Kind = LayerSub
			for _, spec := range fields[1:] {
				var width int
				var bname string
				if _, err := fmt.Sscanf(spec, "%d:%s", &width, &bname); err != nil {
					return fmt.Errorf("remap: bad box spec %q: %v", spec, err)
				}
				box, err := boxByName(width, bname)
				if err != nil {
					return err
				}
				l.Boxes = append(l.Boxes, box)
			}
			parsed.Layers = append(parsed.Layers, l)
		case "perm":
			var l Layer
			l.Kind = LayerPerm
			for _, f := range fields[1:] {
				src, err := strconv.Atoi(f)
				if err != nil {
					return fmt.Errorf("remap: bad perm index %q: %v", f, err)
				}
				l.Perm = append(l.Perm, src)
			}
			parsed.Layers = append(parsed.Layers, l)
		case "compress":
			var l Layer
			l.Kind = LayerCompress
			for _, spec := range fields[1:] {
				var group []int
				for _, f := range strings.Split(spec, ",") {
					bit, err := strconv.Atoi(f)
					if err != nil {
						return fmt.Errorf("remap: bad compress bit %q: %v", f, err)
					}
					group = append(group, bit)
				}
				l.Groups = append(l.Groups, group)
			}
			parsed.Layers = append(parsed.Layers, l)
		default:
			return fmt.Errorf("remap: unknown directive %q", fields[0])
		}
		if ended {
			break
		}
	}
	if !ended {
		return fmt.Errorf("remap: missing end directive")
	}
	if err := parsed.Validate(); err != nil {
		return fmt.Errorf("remap: parsed circuit invalid: %w", err)
	}
	*c = parsed
	return nil
}

// WriteNetlist renders the circuit as a flat, gate-level netlist in a
// structural-Verilog-like text form: wires are named s<stage>_<bit>,
// S-boxes become LUT instances, permutations become assigns, and
// compression groups become XOR trees. This is the synthesis-handoff
// artifact of §V-B.
func (c *Circuit) WriteNetlist(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("remap: refusing to render invalid circuit: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "// remap function %s: %d -> %d bits, %d layers\n",
		c.Name, c.InBits, c.OutBits, len(c.Layers))
	fmt.Fprintf(bw, "module %s(input [%d:0] in, output [%d:0] out);\n",
		strings.ToLower(c.Name), c.InBits-1, c.OutBits-1)

	width := c.InBits
	fmt.Fprintf(bw, "  wire [%d:0] s0 = in;\n", width-1)
	for li, l := range c.Layers {
		cur, next := li, li+1
		switch l.Kind {
		case LayerSub:
			fmt.Fprintf(bw, "  wire [%d:0] s%d; // substitution layer\n", width-1, next)
			bit := 0
			for bi, box := range l.Boxes {
				fmt.Fprintf(bw, "  sbox_%s u%d_%d(.in(s%d[%d:%d]), .out(s%d[%d:%d]));\n",
					strings.ToLower(box.Name), next, bi,
					cur, bit+box.Width-1, bit, next, bit+box.Width-1, bit)
				bit += box.Width
			}
			// Pass any unboxed tail bits through.
			for ; bit < width; bit++ {
				fmt.Fprintf(bw, "  assign s%d[%d] = s%d[%d];\n", next, bit, cur, bit)
			}
		case LayerPerm:
			fmt.Fprintf(bw, "  wire [%d:0] s%d; // permutation layer\n", width-1, next)
			for dst, src := range l.Perm {
				fmt.Fprintf(bw, "  assign s%d[%d] = s%d[%d];\n", next, dst, cur, src)
			}
		case LayerCompress:
			width = len(l.Groups)
			fmt.Fprintf(bw, "  wire [%d:0] s%d; // compression layer\n", width-1, next)
			for dst, group := range l.Groups {
				terms := make([]string, len(group))
				for j, src := range group {
					terms[j] = fmt.Sprintf("s%d[%d]", cur, src)
				}
				fmt.Fprintf(bw, "  assign s%d[%d] = %s;\n", next, dst, strings.Join(terms, " ^ "))
			}
		}
	}
	fmt.Fprintf(bw, "  assign out = s%d[%d:0];\n", len(c.Layers), c.OutBits-1)
	fmt.Fprintln(bw, "endmodule")

	// Emit one LUT module per distinct S-box used.
	seen := map[string]SBox{}
	for _, l := range c.Layers {
		for _, box := range l.Boxes {
			seen[box.Name] = box
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		box := seen[n]
		fmt.Fprintf(bw, "\nmodule sbox_%s(input [%d:0] in, output reg [%d:0] out);\n",
			strings.ToLower(box.Name), box.Width-1, box.Width-1)
		fmt.Fprintln(bw, "  always @(*) case (in)")
		for v, sub := range box.Table {
			fmt.Fprintf(bw, "    %d'h%X: out = %d'h%X;\n", box.Width, v, box.Width, sub)
		}
		fmt.Fprintln(bw, "  endcase")
		fmt.Fprintln(bw, "endmodule")
	}
	return bw.Flush()
}
