package remap

// S-boxes from the lightweight ciphers the paper draws its primitives from
// (§V-A): PRESENT (Bogdanov et al., CHES 2007) and SPONGENT (Bogdanov et
// al., CHES 2011). Both are 4-bit optimal S-boxes in the Leander–Poschmann
// classification: maximal nonlinearity and full diffusion, implementable in
// a handful of gate levels.

// SBox is a bijective n→n substitution table (n = 3 or 4 here).
type SBox struct {
	// Name identifies the source cipher for reports.
	Name string
	// Width is the input/output width in bits (3 or 4).
	Width int
	// Table maps each input value to its substitution.
	Table []uint8
}

// PresentSBox is the PRESENT cipher's 4-bit S-box.
var PresentSBox = SBox{
	Name:  "PRESENT",
	Width: 4,
	Table: []uint8{0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2},
}

// SpongentSBox is the SPONGENT hash's 4-bit S-box.
var SpongentSBox = SBox{
	Name:  "SPONGENT",
	Width: 4,
	Table: []uint8{0xE, 0xD, 0xB, 0x0, 0x2, 0x1, 0x4, 0xF, 0x7, 0xA, 0x8, 0x5, 0x9, 0xC, 0x3, 0x6},
}

// Cube3SBox is a 3-bit S-box (the inverse-based permutation x -> x^-1 style
// table used for odd-width tail groups; 3→3 S-boxes are what the paper's R1
// uses alongside 4→4 boxes in its substitution stages).
var Cube3SBox = SBox{
	Name:  "CUBE3",
	Width: 3,
	Table: []uint8{0x1, 0x5, 0x6, 0x3, 0x7, 0x4, 0x2, 0x0},
}

// AllSBoxes is the primitive pool the generator samples substitution layers
// from.
var AllSBoxes = []SBox{PresentSBox, SpongentSBox, Cube3SBox}

// IsBijective reports whether the table is a permutation of its domain.
// The generator rejects non-bijective substitution primitives because a
// substitution stage must not lose entropy (compression is the C-S boxes'
// job, where it is accounted for).
func (s SBox) IsBijective() bool {
	if len(s.Table) != 1<<uint(s.Width) {
		return false
	}
	seen := make([]bool, len(s.Table))
	for _, v := range s.Table {
		if int(v) >= len(s.Table) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// apply substitutes the low Width bits of group v.
func (s SBox) apply(v uint64) uint64 {
	return uint64(s.Table[v&uint64(len(s.Table)-1)])
}
