package harness

// The run journal: a streaming JSONL record of completed cells that
// makes suite runs resumable. Every finished cell is appended as one
// line keyed by the full cell address (scenario, params, scope, shard,
// rootSeed) — the same five values that make a cell a pure function —
// so a crashed run's journal, loaded back with ResumeJournal, lets Map
// skip the cells that already completed and splice their stored values
// into its output. Because cells are deterministic, a resumed run's
// final document is byte-identical to an uninterrupted one (modulo
// timing and backend-placement stats).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Sink receives every completed cell — wire-encoded result included —
// as it finishes. Pool.SetSink installs one. Calls arrive concurrently
// from worker goroutines (deliberately outside the pool lock, so cell
// completions never serialize behind another cell's journal I/O);
// implementations must synchronize internally, as Journal does with
// its own mutex. Cells completed by a resumed journal are replayed
// through the sink too, with Cell.Backend == "journal".
type Sink interface {
	CellDone(c Cell, spec CellSpec, res CellResult)
}

// CellLookup is implemented by sinks that already hold results for some
// cells (a resumed Journal). Map consults it before scheduling: cells
// that are present are skipped, their stored values spliced into the
// output, and their completion replayed to the observer and sink so
// run-level accounting (Report.Cells) matches an uninterrupted run.
type CellLookup interface {
	LookupCell(spec CellSpec) (CellResult, bool)
}

// JournalEntry is one journal line: a completed cell's address and its
// wire-encoded value. Failed cells are never journaled — a resumed run
// retries them.
type JournalEntry struct {
	Scenario string `json:"scenario"`
	Params   Params `json:"params"`
	Scope    string `json:"scope"`
	Shard    int    `json:"shard"`
	RootSeed uint64 `json:"root_seed"`
	// Seed is the derived per-cell seed (informational; workers re-derive
	// it from the address).
	Seed uint64 `json:"seed,omitempty"`
	// Backend names the backend that originally executed the cell.
	Backend string `json:"backend,omitempty"`
	// ElapsedUS is the cell's original wall-clock time in microseconds.
	ElapsedUS int64 `json:"elapsed_us,omitempty"`
	// Value is the cell's wire-encoded result.
	Value json.RawMessage `json:"value"`
}

// CanonicalParams collapses a Params to the canonical string used
// everywhere a cell address becomes a comparable key: journal lookups,
// worker batch grouping (ExecuteCells), and stbpu-report's journal
// flattening. One definition keeps the three in lockstep — if the
// canonicalization ever changes, every keyed site changes with it.
func CanonicalParams(p Params) (string, error) {
	pj, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	return string(pj), nil
}

// journalKey is a cell address in comparable form: params are collapsed
// via CanonicalParams.
type journalKey struct {
	scenario, params, scope string
	shard                   int
	root                    uint64
}

func specJournalKey(s CellSpec) (journalKey, error) {
	pj, err := CanonicalParams(s.Params)
	if err != nil {
		return journalKey{}, err
	}
	return journalKey{scenario: s.Scenario, params: pj, scope: s.Scope, shard: s.Shard, root: s.RootSeed}, nil
}

// journalValue is the indexed payload of one completed cell. Only
// entries loaded by a resume carry a value (Map splices them); cells
// appended during the run index presence alone — on a million-cell
// sweep, retaining every appended value would grow the coordinator by
// the whole run's worth of JSON that nothing ever reads back.
type journalValue struct {
	value     json.RawMessage // nil for cells appended this run
	elapsedUS int64
}

// Journal is a Sink that streams completed cells to a JSONL file and,
// when resumed from an existing file, a CellLookup that answers which
// cells are already done. One line is written per cell with a single
// Write call, so a crash can corrupt at most the final line — which the
// loader tolerates and drops.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	index    map[journalKey]journalValue
	loaded   int
	appended int
	writeErr error
}

// CreateJournal creates (or truncates) a fresh journal at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, index: map[journalKey]journalValue{}}, nil
}

// ResumeJournal opens the journal at path, loads its completed cells,
// and appends subsequent completions. A missing file resumes into an
// empty journal (the degenerate case: nothing to skip). A truncated
// final line — the signature of a run killed mid-write — is dropped
// AND physically truncated away before appending, so the resumed file
// stays parseable line by line; corruption anywhere else is an error.
func ResumeJournal(path string) (*Journal, error) {
	entries, goodLen, err := scanJournal(path)
	switch {
	case err == nil:
		// Cut the dropped tail off before appending — writing after it
		// would weld the next entry onto garbage mid-file, poisoning
		// every later read of the journal.
		if err := os.Truncate(path, goodLen); err != nil {
			return nil, err
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh journal.
	default:
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, index: make(map[journalKey]journalValue, len(entries))}
	for _, e := range entries {
		pj, err := CanonicalParams(e.Params)
		if err != nil {
			f.Close()
			return nil, err
		}
		k := journalKey{scenario: e.Scenario, params: pj, scope: e.Scope, shard: e.Shard, root: e.RootSeed}
		if _, dup := j.index[k]; !dup {
			j.index[k] = journalValue{value: e.Value, elapsedUS: e.ElapsedUS}
			j.loaded++
		}
	}
	return j, nil
}

// ReadJournal parses the journal at path into entries, dropping a
// truncated final line. It opens the file read-only, so reporting tools
// can load a journal that another run is still appending to.
func ReadJournal(path string) ([]JournalEntry, error) {
	entries, _, err := scanJournal(path)
	return entries, err
}

// scanJournal parses the journal and reports how many leading bytes
// hold well-formed, newline-terminated entries. Every entry is written
// with a single Write that includes the trailing newline, so a line
// missing its newline (or failing to parse at the very end of the
// file) is a mid-write tail and is dropped — excluded from goodLen so
// ResumeJournal can truncate it away. A malformed line with content
// after it is real corruption and errors out.
func scanJournal(path string) (entries []JournalEntry, goodLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var pendingErr error
	line := 0
	for {
		b, readErr := br.ReadBytes('\n')
		if len(b) > 0 {
			line++
			if pendingErr != nil {
				return nil, 0, pendingErr
			}
			terminated := b[len(b)-1] == '\n'
			content := b
			if terminated {
				content = b[:len(b)-1]
			}
			switch {
			case len(content) == 0:
				goodLen += int64(len(b)) // stray blank line: harmless
			case !terminated:
				// Mid-write tail (our writer always includes the newline):
				// dropped, and excluded from goodLen.
			default:
				var e JournalEntry
				if uerr := json.Unmarshal(content, &e); uerr != nil {
					pendingErr = fmt.Errorf("journal %s line %d: %w", path, line, uerr)
					continue
				}
				entries = append(entries, e)
				goodLen += int64(len(b))
			}
		}
		if readErr != nil {
			if errors.Is(readErr, io.EOF) {
				return entries, goodLen, nil // a bad FINAL line is a dropped tail
			}
			return nil, 0, fmt.Errorf("journal %s: %w", path, readErr)
		}
	}
}

// CellDone implements Sink: successful, addressable cells append one
// JSONL line; errored cells, anonymous cells (Map outside RunAll), and
// cells already present (a resumed run replaying restored completions)
// are skipped. Write failures are sticky and surface from Err/Close.
func (j *Journal) CellDone(c Cell, spec CellSpec, res CellResult) {
	if spec.Scenario == "" {
		return
	}
	if res.Err != "" || len(res.Value) == 0 {
		// A cell that failed is legitimately skipped — resume retries it.
		// But a cell that *succeeded* and still has no wire value hit a
		// wire-encoding failure (e.g. a NaN in its result): the caller
		// believes it is persisted, so that must fail the run at Close,
		// not silently leave a hole the resume re-executes.
		if c.Err == nil {
			j.recordErr(fmt.Errorf("cell %s/%s/%d not journalable: %s", spec.Scenario, spec.Scope, spec.Shard, res.Err))
		}
		return
	}
	key, err := specJournalKey(spec)
	if err != nil {
		j.recordErr(err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	// Once a write has failed, stop appending entirely: a partial line
	// followed by later successful writes would weld garbage into the
	// middle of the file, turning a resumable prefix into a journal no
	// resume will accept. The sticky error already fails the run at
	// Close; keeping the file a clean prefix preserves what it holds.
	if j.writeErr != nil {
		return
	}
	if _, dup := j.index[key]; dup {
		return
	}
	line, err := json.Marshal(JournalEntry{
		Scenario:  spec.Scenario,
		Params:    spec.Params,
		Scope:     spec.Scope,
		Shard:     spec.Shard,
		RootSeed:  spec.RootSeed,
		Seed:      spec.Seed,
		Backend:   c.Backend,
		ElapsedUS: res.ElapsedUS,
		Value:     res.Value,
	})
	if err != nil {
		j.setErrLocked(err)
		return
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.setErrLocked(err)
		return
	}
	j.index[key] = journalValue{elapsedUS: res.ElapsedUS}
	j.appended++
}

// LookupCell implements CellLookup. Only resume-loaded cells answer:
// cells appended during this run are indexed for dedup but their
// values live on disk alone. A hit releases the stored value — Map
// splices each cell exactly once, and holding a 95%-complete sweep's
// JSON in memory for the rest of the run would dwarf the work left to
// do. (A hypothetical second lookup of the same cell re-executes it
// deterministically; dedup still suppresses a duplicate append.)
func (j *Journal) LookupCell(spec CellSpec) (CellResult, bool) {
	key, err := specJournalKey(spec)
	if err != nil {
		return CellResult{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.index[key]
	if !ok || v.value == nil {
		return CellResult{}, false
	}
	j.index[key] = journalValue{elapsedUS: v.elapsedUS}
	return CellResult{Shard: spec.Shard, Value: v.value, ElapsedUS: v.elapsedUS}, true
}

// Loaded reports how many completed cells the journal carried when it
// was resumed (0 for a fresh journal).
func (j *Journal) Loaded() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loaded
}

// Appended reports how many cells this process added to the journal.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Err returns the first write or encode failure, if any. A journal that
// stopped persisting must fail the run loudly — otherwise a later crash
// would silently lose the cells the caller believed were safe.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

func (j *Journal) recordErr(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.setErrLocked(err)
}

func (j *Journal) setErrLocked(err error) {
	if j.writeErr == nil {
		j.writeErr = err
	}
}

// Close flushes and closes the journal file, returning the first error
// seen over the journal's lifetime (sticky write failures included).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.writeErr
	}
	err := j.f.Close()
	j.f = nil
	if j.writeErr != nil {
		return j.writeErr
	}
	return err
}

// journalElapsed converts a stored elapsed time back to a duration for
// replayed observer cells.
func journalElapsed(us int64) time.Duration { return time.Duration(us) * time.Microsecond }
