package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// traceMajorCell is the reference per-cell computation the grouped runs
// must reproduce: a pure function of (shard, seed).
func traceMajorCell(shard int, seed uint64) uint64 {
	return seed*2654435761 + uint64(shard)
}

// groupedRun builds a MapTraceMajor run func over traceMajorCell,
// counting invocations and recording observed group sizes.
func groupedRun(calls *atomic.Uint64, sizes chan<- int) func(ctx context.Context, shards []int, seeds []uint64) ([]uint64, error) {
	return func(ctx context.Context, shards []int, seeds []uint64) ([]uint64, error) {
		calls.Add(1)
		if sizes != nil {
			sizes <- len(shards)
		}
		out := make([]uint64, len(shards))
		for i, shard := range shards {
			out[i] = traceMajorCell(shard, seeds[i])
		}
		return out, nil
	}
}

// TestMapTraceMajorMatchesMap pins the scheduling-only contract: the
// grouped path returns exactly what per-cell Map returns, with the
// trace-major flag on (one run per group) and off (one run per cell).
func TestMapTraceMajorMatchesMap(t *testing.T) {
	const n, groupSize = 12, 3
	key := func(shard int) int { return shard / groupSize }

	want, err := Map(context.Background(), NewPool(2, 42), "tm-scope", n,
		func(ctx context.Context, shard int, seed uint64) (uint64, error) {
			return traceMajorCell(shard, seed), nil
		})
	if err != nil {
		t.Fatal(err)
	}

	for _, traceMajor := range []bool{true, false} {
		pool := NewPool(2, 42)
		pool.SetTraceMajor(traceMajor)
		if pool.TraceMajor() != traceMajor {
			t.Fatalf("TraceMajor() = %v after SetTraceMajor(%v)", pool.TraceMajor(), traceMajor)
		}
		var calls atomic.Uint64
		got, err := MapTraceMajor(context.Background(), pool, "tm-scope", n, key, nil, groupedRun(&calls, nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("trace-major=%v: grouped results diverge from Map", traceMajor)
		}
		wantCalls := uint64(n)
		if traceMajor {
			wantCalls = n / groupSize
		}
		if calls.Load() != wantCalls {
			t.Errorf("trace-major=%v: run called %d times, want %d", traceMajor, calls.Load(), wantCalls)
		}
	}
}

// TestMapTraceMajorSeeds pins that grouped runs receive exactly the
// ShardSeeds Map would hand each cell, in ascending shard order.
func TestMapTraceMajorSeeds(t *testing.T) {
	const n = 10
	pool := NewPool(1, 7)
	_, err := MapTraceMajor(context.Background(), pool, "tm-seeds", n,
		func(shard int) int { return shard % 2 },
		nil,
		func(ctx context.Context, shards []int, seeds []uint64) ([]struct{}, error) {
			if len(shards) != n/2 {
				return nil, fmt.Errorf("group of %d shards, want %d", len(shards), n/2)
			}
			for i, shard := range shards {
				if i > 0 && shards[i-1] >= shard {
					return nil, fmt.Errorf("shards out of order: %v", shards)
				}
				if want := ShardSeed(7, "tm-seeds", shard); seeds[i] != want {
					return nil, fmt.Errorf("shard %d seed %#x, want %#x", shard, seeds[i], want)
				}
			}
			return make([]struct{}, len(shards)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapTraceMajorWantFilter pins the worker-side subset path: with a
// want filter in the context (as captureScenarioCells installs), groups
// contain only requested shards, so a worker never replays traces for
// cells it was not asked for — and the subset results are the same
// values the full run produces.
func TestMapTraceMajorWantFilter(t *testing.T) {
	const n, groupSize = 12, 3
	key := func(shard int) int { return shard / groupSize }
	want := map[int]bool{1: true, 2: true, 7: true}

	// The filtered ctx flows through a capture backend so only wanted
	// shards execute, mirroring the worker path.
	cap := &captureBackend{scope: "tm-filter", want: want, inner: NewLocalBackend(2)}
	pool := NewPool(2, 99)
	pool.SetBackend(cap)
	pool.beginScenario("tm-test", Params{})
	defer pool.endScenario()

	var calls atomic.Uint64
	sizes := make(chan int, n)
	ctx := withTraceMajorWant(context.Background(), "tm-filter", want)
	_, err := MapTraceMajor(ctx, pool, "tm-filter", n, key, nil, groupedRun(&calls, sizes))
	if !errors.Is(err, errCellsCaptured) {
		t.Fatalf("err = %v, want errCellsCaptured", err)
	}
	if !cap.captured || len(cap.results) != len(want) {
		t.Fatalf("captured %d results, want %d", len(cap.results), len(want))
	}
	// Two groups were touched (shards {1,2} → group 0, {7} → group 2):
	// exactly two runs, sized to the wanted subsets.
	if calls.Load() != 2 {
		t.Errorf("run called %d times, want 2", calls.Load())
	}
	close(sizes)
	total := 0
	for s := range sizes {
		total += s
	}
	if total != len(want) {
		t.Errorf("groups covered %d shards, want %d (no unrequested replay)", total, len(want))
	}
	for _, r := range cap.results {
		var got uint64
		if err := decodeInto(&r, &got); err != nil {
			t.Fatal(err)
		}
		if want := traceMajorCell(r.Shard, ShardSeed(99, "tm-filter", r.Shard)); got != want {
			t.Errorf("shard %d: subset value %d != full-run value %d", r.Shard, got, want)
		}
	}
}

// specRecordingBackend captures the specs Map hands its backend so
// tests can inspect stamped metadata (Locality).
type specRecordingBackend struct {
	inner *LocalBackend
	specs []CellSpec
}

func (b *specRecordingBackend) Name() string { return "spec-recorder" }
func (b *specRecordingBackend) Close() error { return nil }
func (b *specRecordingBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	b.specs = append(b.specs, specs...)
	return b.inner.Run(ctx, specs)
}

// TestMapTraceMajorLocality pins that the locality labeler stamps every
// cell spec — on the grouped path and on the model-major fallback — and
// that the label is the scheduling-only metadata the contract promises
// (results identical with and without it).
func TestMapTraceMajorLocality(t *testing.T) {
	const n, groupSize = 6, 3
	key := func(shard int) int { return shard / groupSize }
	loc := func(shard int) string { return Locality("wl", shard/groupSize) }

	for _, traceMajor := range []bool{true, false} {
		rec := &specRecordingBackend{inner: NewLocalBackend(2)}
		pool := NewPool(2, 42)
		pool.SetBackend(rec)
		pool.SetTraceMajor(traceMajor)
		var calls atomic.Uint64
		got, err := MapTraceMajor(context.Background(), pool, "tm-loc", n, key, loc, groupedRun(&calls, nil))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Map(context.Background(), NewPool(2, 42), "tm-loc", n,
			func(ctx context.Context, shard int, seed uint64) (uint64, error) {
				return traceMajorCell(shard, seed), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("trace-major=%v: locality-labeled results diverge from Map", traceMajor)
		}
		if len(rec.specs) != n {
			t.Fatalf("backend saw %d specs, want %d", len(rec.specs), n)
		}
		for _, s := range rec.specs {
			if want := Locality("wl", s.Shard/groupSize); s.Locality != want {
				t.Errorf("trace-major=%v: shard %d locality %q, want %q", traceMajor, s.Shard, s.Locality, want)
			}
		}
	}
}

// TestLocalityRoundTrip pins the key format both ends rely on: workers
// SplitLocality what coordinators Locality'd, including names that
// themselves contain the separator.
func TestLocalityRoundTrip(t *testing.T) {
	cases := []struct {
		workload string
		records  int
	}{
		{"505.mcf", 100000},
		{"spec-ab12cd34", 0},
		{"odd@name", 7},
	}
	for _, c := range cases {
		key := Locality(c.workload, c.records)
		wl, rec, ok := SplitLocality(key)
		if !ok || wl != c.workload || rec != c.records {
			t.Errorf("SplitLocality(%q) = (%q, %d, %v), want (%q, %d, true)", key, wl, rec, ok, c.workload, c.records)
		}
	}
	for _, bad := range []string{"", "no-separator", "wl@", "wl@-3", "wl@x"} {
		if _, _, ok := SplitLocality(bad); ok {
			t.Errorf("SplitLocality(%q) ok, want failure", bad)
		}
	}
}

// TestMapTraceMajorGroupError: a failing group surfaces through every
// member cell and Map reports the lowest-shard root cause.
func TestMapTraceMajorGroupError(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapTraceMajor(context.Background(), NewPool(2, 1), "tm-err", 6,
		func(shard int) int { return shard / 3 },
		nil,
		func(ctx context.Context, shards []int, seeds []uint64) ([]int, error) {
			if shards[0] == 3 {
				return nil, boom
			}
			return make([]int, len(shards)), nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the group error", err)
	}
}
