// Pool, Map, and the seeding scheme: the execution core of the package
// (see doc.go for the package overview and docs/ARCHITECTURE.md for the
// full picture).

package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stbpu/internal/rng"
	"stbpu/internal/snapstore"
	"stbpu/internal/tracestore"
)

// Params is the union of knobs scenarios accept. Zero values mean "use the
// scenario default" (see Merged); scenarios read only the fields they
// document.
type Params struct {
	// Records is the per-workload trace length.
	Records int `json:"records,omitempty"`
	// MaxWorkloads caps the workload list (0 = all).
	MaxWorkloads int `json:"max_workloads,omitempty"`
	// MaxPairs caps the SMT pair list (0 = all).
	MaxPairs int `json:"max_pairs,omitempty"`
	// Trials is the per-cell repetition count for randomized measurements.
	Trials int `json:"trials,omitempty"`
	// Budget bounds attack-driver scans.
	Budget int `json:"budget,omitempty"`
	// Bits is the covert-channel message length.
	Bits int `json:"bits,omitempty"`
	// R is the attack-difficulty factor for threshold derivation.
	R float64 `json:"r,omitempty"`
	// Sweep is a scenario-specific axis (r values, trace lengths, ...).
	Sweep []float64 `json:"sweep,omitempty"`
	// Workload names a single-workload scenario's trace preset.
	Workload string `json:"workload,omitempty"`
	// WorkloadSpec names a registered spec-driven workload
	// ("spec:<name>@<hash>") for the workloads scenario family; empty
	// runs the built-in spec fixtures.
	WorkloadSpec string `json:"workload_spec,omitempty"`
}

// Merged fills p's zero fields from def and returns the result.
func (p Params) Merged(def Params) Params {
	if p.Records == 0 {
		p.Records = def.Records
	}
	if p.MaxWorkloads == 0 {
		p.MaxWorkloads = def.MaxWorkloads
	}
	if p.MaxPairs == 0 {
		p.MaxPairs = def.MaxPairs
	}
	if p.Trials == 0 {
		p.Trials = def.Trials
	}
	if p.Budget == 0 {
		p.Budget = def.Budget
	}
	if p.Bits == 0 {
		p.Bits = def.Bits
	}
	if p.R == 0 {
		p.R = def.R
	}
	if len(p.Sweep) == 0 {
		p.Sweep = def.Sweep
	}
	if p.Workload == "" {
		p.Workload = def.Workload
	}
	if p.WorkloadSpec == "" {
		p.WorkloadSpec = def.WorkloadSpec
	}
	return p
}

// DefaultRootSeed seeds runs that don't specify one. Any value works; this
// one is fixed so default runs are comparable across machines.
const DefaultRootSeed uint64 = 0x57b9c0ffee

// ShardSeed derives the RNG seed for one cell. It depends only on the root
// seed, the scope name, and the shard index — never on worker count or
// scheduling — so results are reproducible at any parallelism.
func ShardSeed(root uint64, scope string, shard int) uint64 {
	s := root ^ fnv1a(scope)
	rng.SplitMix64(&s)
	s ^= uint64(shard) * 0x9e3779b97f4a7c15
	return rng.SplitMix64(&s)
}

func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Cell is one completed unit of work, streamed to the pool's observer as
// workers finish (completion order, not shard order).
type Cell struct {
	// Backend names the backend that executed the cell.
	Backend string
	// Scope is the scenario-local cell-space name passed to Map.
	Scope string
	// Shard is the cell's dense index within the scope.
	Shard int
	// Seed is the derived per-cell RNG seed.
	Seed uint64
	// Elapsed is the cell's wall-clock time.
	Elapsed time.Duration
	// Err is the cell's error, if any.
	Err error
}

// Pool is a sized worker pool with a root seed. It carries no goroutines
// of its own; Map spins workers up per call, so an idle Pool costs
// nothing and one Pool can serve many sequential scenarios.
type Pool struct {
	workers  int
	rootSeed uint64

	mu       sync.Mutex
	observer func(Cell)
	sink     Sink
	traces   *tracestore.Store
	snaps    *snapstore.Store
	backend  Backend
	// scenario/params are the scenario context RunAll (or a worker's
	// capture run) establishes around Scenario.Run, stamped into every
	// CellSpec so wire backends can address cells by name.
	scenario       string
	scenarioParams Params
	// modelMajor disables trace-major grouping (see SetTraceMajor;
	// stored inverted so the zero-value pool defaults to trace-major).
	modelMajor bool
	// snapshotsOff disables the warm-state snapshot tier (see
	// SetSnapshots; stored inverted so the zero-value pool defaults to
	// snapshots on).
	snapshotsOff bool

	cells atomic.Uint64
}

// sharedTraceStore backs Traces for nil pools (harness.Map's "no pool"
// convenience path), so even ad-hoc runs share one process-wide cache.
// sharedSnapStore is its snapshot-tier twin.
var (
	sharedTraceStoreOnce sync.Once
	sharedTraceStore     *tracestore.Store
	sharedSnapStoreOnce  sync.Once
	sharedSnapStore      *snapstore.Store
)

// SetTraceStore installs the cross-run trace store scenario cells share
// (nil reverts to lazy default creation). Call before running scenarios.
func (p *Pool) SetTraceStore(s *tracestore.Store) {
	p.mu.Lock()
	p.traces = s
	p.mu.Unlock()
}

// Traces returns the pool's shared trace store, lazily creating one with
// the default byte budget. Scenarios fetch workload traces through it so
// one (workload, records) trace is generated once per suite run rather
// than once per scenario; because generation is deterministic, sharing
// cannot perturb results (see tracestore's package comment).
func (p *Pool) Traces() *tracestore.Store {
	if p == nil {
		sharedTraceStoreOnce.Do(func() {
			sharedTraceStore = tracestore.New(0, nil)
		})
		return sharedTraceStore
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.traces == nil {
		p.traces = tracestore.New(0, nil)
	}
	return p.traces
}

// SetSnapStore installs the checkpoint store scenario cells share for
// the warm-state snapshot tier (nil reverts to lazy default creation).
// Call before running scenarios.
func (p *Pool) SetSnapStore(s *snapstore.Store) {
	p.mu.Lock()
	p.snaps = s
	p.mu.Unlock()
}

// Snaps returns the pool's shared checkpoint store, lazily creating one
// with the default byte budget. Scenarios capture warm predictor state
// at phase boundaries through it, so a phase measurement restores a
// checkpoint instead of replaying its whole warmup prefix; because
// snapshots are deterministic encodings of deterministic replay, sharing
// cannot perturb results.
func (p *Pool) Snaps() *snapstore.Store {
	if p == nil {
		sharedSnapStoreOnce.Do(func() {
			sharedSnapStore = snapstore.New(0)
		})
		return sharedSnapStore
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snaps == nil {
		p.snaps = snapstore.New(0)
	}
	return p.snaps
}

// SetSnapshots toggles the warm-state snapshot tier for scenarios on
// this pool (default on). Off, phase cells fall back to replaying their
// warmup prefix from record zero — which only changes speed, never
// results: the flag exists to pin that equivalence in tests and CI and
// to isolate regressions.
func (p *Pool) SetSnapshots(on bool) {
	p.mu.Lock()
	p.snapshotsOff = !on
	p.mu.Unlock()
}

// SnapshotsOn reports whether the warm-state snapshot tier is enabled.
func (p *Pool) SnapshotsOn() bool {
	if p == nil {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.snapshotsOff
}

// NewPool returns a pool running up to workers cells concurrently
// (workers <= 0 means GOMAXPROCS) with the given root seed.
func NewPool(workers int, rootSeed uint64) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, rootSeed: rootSeed}
}

// SetBackend installs the backend Map schedules cells through (nil
// reverts to the lazily created LocalBackend). Backends that stream
// completed cells are wired to the pool's observer.
func (p *Pool) SetBackend(b Backend) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := b.(cellSink); ok {
		s.setSink(p.complete)
	}
	p.backend = b
}

// Backend returns the pool's backend, lazily creating a LocalBackend
// sized to the pool's worker count.
func (p *Pool) Backend() Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.backend == nil {
		lb := NewLocalBackend(p.workers)
		lb.setSink(p.complete)
		p.backend = lb
	}
	return p.backend
}

// beginScenario establishes the scenario context stamped into CellSpecs;
// endScenario clears it. RunAll brackets every Scenario.Run with them.
func (p *Pool) beginScenario(name string, params Params) {
	p.mu.Lock()
	p.scenario, p.scenarioParams = name, params
	p.mu.Unlock()
}

func (p *Pool) endScenario() {
	p.mu.Lock()
	p.scenario, p.scenarioParams = "", Params{}
	p.mu.Unlock()
}

func (p *Pool) scenarioContext() (string, Params) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scenario, p.scenarioParams
}

// complete is where backends report finished cells: it maintains the
// pool's cell counter and feeds the sink (wire-encoded) and observer.
// The sink call — wire encoding plus, for a Journal, a disk append —
// runs outside the pool lock so concurrent workers don't serialize
// behind each other's I/O; sinks synchronize internally. Observer
// calls stay serialized under the pool lock as SetObserver documents.
func (p *Pool) complete(c Cell, spec CellSpec, res CellResult) {
	p.cells.Add(1)
	if sink := p.currentSink(); sink != nil {
		wire := res
		wire.encodeWire() // the copy leaves the backend's live value intact
		sink.CellDone(c, spec, wire)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.observer != nil {
		p.observer(c)
	}
}

// Default returns a GOMAXPROCS-wide pool with DefaultRootSeed.
func Default() *Pool { return NewPool(0, DefaultRootSeed) }

// Workers reports the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// RootSeed reports the pool's root seed.
func (p *Pool) RootSeed() uint64 { return p.rootSeed }

// Cells reports how many cells the pool has completed since creation.
func (p *Pool) Cells() uint64 { return p.cells.Load() }

// SetObserver installs fn to receive every completed Cell (nil removes
// it). Calls are serialized; fn must not block for long.
func (p *Pool) SetObserver(fn func(Cell)) {
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// SetSink installs s to receive every completed cell with its spec and
// wire-encoded result (nil removes it). Calls are serialized like the
// observer's. A sink that also implements CellLookup (a resumed
// Journal) additionally short-circuits Map: cells it already holds are
// not re-executed.
func (p *Pool) SetSink(s Sink) {
	p.mu.Lock()
	p.sink = s
	p.mu.Unlock()
}

func (p *Pool) currentSink() Sink {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sink
}

// Map runs fn over the n-cell space named scope through the pool's
// backend and returns the results in shard order. Each cell receives its
// ShardSeed. The first error (lowest shard index) cancels the remaining
// cells and is returned; a canceled ctx stops workers promptly and
// returns ctx.Err().
//
// With the default LocalBackend the cell functions run in-process on the
// pool's goroutine workers, exactly as before backends existed. With a
// wire backend (ExecBackend, MultiBackend routing to one) the specs are
// shipped by (scenario, params, scope, shard, root seed) and executed
// remotely; Map merges whatever comes back into shard order, so results
// are bit-identical regardless of which backend ran which cell.
//
// When the pool's sink implements CellLookup (a resumed Journal), cells
// the lookup already holds are not re-executed: their stored values are
// decoded into the output, and their completion is replayed to the
// observer and sink (Backend "journal") so Report.Cells matches an
// uninterrupted run. Because cells are pure functions of their address,
// the spliced values are bit-identical to re-executing.
func Map[T any](ctx context.Context, p *Pool, scope string, n int, fn func(ctx context.Context, shard int, seed uint64) (T, error)) ([]T, error) {
	if p == nil {
		p = Default()
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	scenario, params := p.scenarioContext()
	erased := func(ctx context.Context, shard int, seed uint64) (any, error) {
		return fn(ctx, shard, seed)
	}
	specs := make([]CellSpec, n)
	locality := localityFor(ctx, scope)
	for i := range specs {
		specs[i] = CellSpec{
			Scenario: scenario,
			Params:   params,
			Scope:    scope,
			Shard:    i,
			Seed:     ShardSeed(p.rootSeed, scope, i),
			RootSeed: p.rootSeed,
			fn:       erased,
		}
		if locality != nil {
			specs[i].Locality = locality(i)
		}
	}

	got := make([]bool, n)
	errs := make([]error, n)
	anyErr := false

	b := p.Backend()
	pending := specs
	if lookup, ok := p.currentSink().(CellLookup); ok && scenario != "" {
		pending = make([]CellSpec, 0, n)
		for _, s := range specs {
			r, done := lookup.LookupCell(s)
			if !done {
				pending = append(pending, s)
				continue
			}
			if err := decodeInto(&r, &out[s.Shard]); err != nil {
				return nil, fmt.Errorf("%s shard %d: journaled cell: %w", scope, s.Shard, err)
			}
			got[s.Shard] = true
			p.complete(Cell{
				Backend: "journal", Scope: s.Scope, Shard: s.Shard, Seed: s.Seed,
				Elapsed: journalElapsed(r.ElapsedUS),
			}, s, r)
		}
	}

	var results []CellResult
	if len(pending) > 0 {
		var runErr error
		results, runErr = b.Run(ctx, pending)
		if runErr != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%s: %s backend: %w", scope, b.Name(), runErr)
		}
	}
	for idx := range results {
		r := &results[idx]
		if r.Shard < 0 || r.Shard >= n {
			return nil, fmt.Errorf("%s: %s backend returned out-of-range shard %d", scope, b.Name(), r.Shard)
		}
		if got[r.Shard] {
			return nil, fmt.Errorf("%s: %s backend returned duplicate results for shard %d", scope, b.Name(), r.Shard)
		}
		got[r.Shard] = true
		if err := r.CellErr(); err != nil {
			errs[r.Shard] = err
			anyErr = true
			continue
		}
		if err := decodeInto(r, &out[r.Shard]); err != nil {
			return nil, fmt.Errorf("%s shard %d: %s backend: %w", scope, r.Shard, b.Name(), err)
		}
	}

	if anyErr {
		// Report the lowest-indexed *root-cause* error: once a cell fails
		// the backend cancels its remaining in-flight cells, so lower-
		// indexed cells may abort with context.Canceled — those are
		// collateral, not the cause, as long as the caller's context is
		// still live.
		var collateral error
		collateralShard := -1
		for i, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, context.Canceled) && ctx.Err() == nil {
				if collateral == nil {
					collateral, collateralShard = err, i
				}
				continue
			}
			return nil, fmt.Errorf("%s shard %d: %w", scope, i, err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%s shard %d: %w", scope, collateralShard, collateral)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, ok := range got {
		if !ok {
			return nil, fmt.Errorf("%s: %s backend returned no result for shard %d", scope, b.Name(), i)
		}
	}
	return out, nil
}
