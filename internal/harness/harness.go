// Package harness is the scenario registry and parallel execution engine
// behind every experiment driver in this repository. An experiment is
// registered once as a named, parameterized Scenario; the engine shards
// its (model × workload × trial) cell space across a worker pool and
// reassembles results in shard order, so a run is bit-identical at any
// worker count.
//
// Determinism contract: every stochastic input of a cell derives from
// ShardSeed(rootSeed, scope, shard) — a pure function of the pool's root
// seed, the scenario-local scope name, and the cell's dense index. Worker
// scheduling can reorder *execution* but never *results*: Map writes each
// cell's value into its own slot and aggregation walks slots in index
// order.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stbpu/internal/rng"
	"stbpu/internal/tracestore"
)

// Params is the union of knobs scenarios accept. Zero values mean "use the
// scenario default" (see Merged); scenarios read only the fields they
// document.
type Params struct {
	// Records is the per-workload trace length.
	Records int `json:"records,omitempty"`
	// MaxWorkloads caps the workload list (0 = all).
	MaxWorkloads int `json:"max_workloads,omitempty"`
	// MaxPairs caps the SMT pair list (0 = all).
	MaxPairs int `json:"max_pairs,omitempty"`
	// Trials is the per-cell repetition count for randomized measurements.
	Trials int `json:"trials,omitempty"`
	// Budget bounds attack-driver scans.
	Budget int `json:"budget,omitempty"`
	// Bits is the covert-channel message length.
	Bits int `json:"bits,omitempty"`
	// R is the attack-difficulty factor for threshold derivation.
	R float64 `json:"r,omitempty"`
	// Sweep is a scenario-specific axis (r values, trace lengths, ...).
	Sweep []float64 `json:"sweep,omitempty"`
	// Workload names a single-workload scenario's trace preset.
	Workload string `json:"workload,omitempty"`
}

// Merged fills p's zero fields from def and returns the result.
func (p Params) Merged(def Params) Params {
	if p.Records == 0 {
		p.Records = def.Records
	}
	if p.MaxWorkloads == 0 {
		p.MaxWorkloads = def.MaxWorkloads
	}
	if p.MaxPairs == 0 {
		p.MaxPairs = def.MaxPairs
	}
	if p.Trials == 0 {
		p.Trials = def.Trials
	}
	if p.Budget == 0 {
		p.Budget = def.Budget
	}
	if p.Bits == 0 {
		p.Bits = def.Bits
	}
	if p.R == 0 {
		p.R = def.R
	}
	if len(p.Sweep) == 0 {
		p.Sweep = def.Sweep
	}
	if p.Workload == "" {
		p.Workload = def.Workload
	}
	return p
}

// DefaultRootSeed seeds runs that don't specify one. Any value works; this
// one is fixed so default runs are comparable across machines.
const DefaultRootSeed uint64 = 0x57b9c0ffee

// ShardSeed derives the RNG seed for one cell. It depends only on the root
// seed, the scope name, and the shard index — never on worker count or
// scheduling — so results are reproducible at any parallelism.
func ShardSeed(root uint64, scope string, shard int) uint64 {
	s := root ^ fnv1a(scope)
	rng.SplitMix64(&s)
	s ^= uint64(shard) * 0x9e3779b97f4a7c15
	return rng.SplitMix64(&s)
}

func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Cell is one completed unit of work, streamed to the pool's observer as
// workers finish (completion order, not shard order).
type Cell struct {
	// Scope is the scenario-local cell-space name passed to Map.
	Scope string
	// Shard is the cell's dense index within the scope.
	Shard int
	// Seed is the derived per-cell RNG seed.
	Seed uint64
	// Elapsed is the cell's wall-clock time.
	Elapsed time.Duration
	// Err is the cell's error, if any.
	Err error
}

// Pool is a sized worker pool with a root seed. It carries no goroutines
// of its own; Map spins workers up per call, so an idle Pool costs
// nothing and one Pool can serve many sequential scenarios.
type Pool struct {
	workers  int
	rootSeed uint64

	mu       sync.Mutex
	observer func(Cell)
	traces   *tracestore.Store

	cells atomic.Uint64
}

// sharedTraceStore backs Traces for nil pools (harness.Map's "no pool"
// convenience path), so even ad-hoc runs share one process-wide cache.
var (
	sharedTraceStoreOnce sync.Once
	sharedTraceStore     *tracestore.Store
)

// SetTraceStore installs the cross-run trace store scenario cells share
// (nil reverts to lazy default creation). Call before running scenarios.
func (p *Pool) SetTraceStore(s *tracestore.Store) {
	p.mu.Lock()
	p.traces = s
	p.mu.Unlock()
}

// Traces returns the pool's shared trace store, lazily creating one with
// the default byte budget. Scenarios fetch workload traces through it so
// one (workload, records) trace is generated once per suite run rather
// than once per scenario; because generation is deterministic, sharing
// cannot perturb results (see tracestore's package comment).
func (p *Pool) Traces() *tracestore.Store {
	if p == nil {
		sharedTraceStoreOnce.Do(func() {
			sharedTraceStore = tracestore.New(0, nil)
		})
		return sharedTraceStore
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.traces == nil {
		p.traces = tracestore.New(0, nil)
	}
	return p.traces
}

// NewPool returns a pool running up to workers cells concurrently
// (workers <= 0 means GOMAXPROCS) with the given root seed.
func NewPool(workers int, rootSeed uint64) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, rootSeed: rootSeed}
}

// Default returns a GOMAXPROCS-wide pool with DefaultRootSeed.
func Default() *Pool { return NewPool(0, DefaultRootSeed) }

// Workers reports the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// RootSeed reports the pool's root seed.
func (p *Pool) RootSeed() uint64 { return p.rootSeed }

// Cells reports how many cells the pool has completed since creation.
func (p *Pool) Cells() uint64 { return p.cells.Load() }

// SetObserver installs fn to receive every completed Cell (nil removes
// it). Calls are serialized; fn must not block for long.
func (p *Pool) SetObserver(fn func(Cell)) {
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

func (p *Pool) observe(c Cell) {
	// The observer is invoked under the lock so calls are serialized as
	// SetObserver documents — observers may append to plain slices or
	// write to shared sinks without their own locking.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.observer != nil {
		p.observer(c)
	}
}

// Map runs fn over the n-cell space named scope on the pool's workers and
// returns the results in shard order. Each cell receives its ShardSeed.
// The first error (lowest shard index) cancels the remaining cells and is
// returned; a canceled ctx stops workers promptly and returns ctx.Err().
func Map[T any](ctx context.Context, p *Pool, scope string, n int, fn func(ctx context.Context, shard int, seed uint64) (T, error)) ([]T, error) {
	if p == nil {
		p = Default()
	}
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	workers := p.workers
	if workers > n {
		workers = n
	}

	runCell := func(ctx context.Context, i int) error {
		seed := ShardSeed(p.rootSeed, scope, i)
		start := time.Now()
		v, err := fn(ctx, i, seed)
		out[i] = v
		p.cells.Add(1)
		p.observe(Cell{Scope: scope, Shard: i, Seed: seed, Elapsed: time.Since(start), Err: err})
		return err
	}

	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := runCell(ctx, i); err != nil {
				return nil, fmt.Errorf("%s shard %d: %w", scope, i, err)
			}
		}
		return out, nil
	}

	outer := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				if errs[i] = runCell(ctx, i); errs[i] != nil {
					cancel() // stop handing out further shards
				}
			}
		}()
	}
	wg.Wait()

	// Report the lowest-indexed *root-cause* error: once a cell fails we
	// cancel the inner context, so lower-indexed cells still in flight
	// abort with context.Canceled — those are collateral, not the cause,
	// as long as the caller's context is still live.
	var collateral error
	collateralShard := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) && outer.Err() == nil {
			if collateral == nil {
				collateral, collateralShard = err, i
			}
			continue
		}
		return nil, fmt.Errorf("%s shard %d: %w", scope, i, err)
	}
	if err := outer.Err(); err != nil {
		return nil, err
	}
	if collateral != nil {
		return nil, fmt.Errorf("%s shard %d: %w", scope, collateralShard, collateral)
	}
	return out, nil
}
