package harness

// Wire codec: both wire backends frame messages as a 4-byte big-endian
// payload length followed by the payload. Payloads are JSON by default
// — every peer speaks it — and switch to a compact binary encoding
// built on internal/snap when both ends negotiate it in the
// hello/welcome handshake (exec stdio and remote TCP alike). Bare/old
// workers never advertise the codec and simply stay on JSON; the
// handshake frames themselves are always JSON so the two ends can
// disagree about everything except how to disagree. A binary payload
// starts with a magic byte no JSON payload can start with, so a
// decoder can reject codec confusion loudly, and carries a version
// byte so future revisions can coexist on one fleet.
//
// One message shape serves both wires (work in, results/heartbeat
// out); the exec stdio wire has no sequence numbers and leaves seq 0.
// CellResult values stay wire-encoded JSON inside the binary frame —
// the payload bytes a worker computed are forwarded verbatim, so
// result byte-identity across codecs is structural, not coincidental.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"stbpu/internal/snap"
)

// wireCodecBinary is the name the binary codec goes by in hello
// (advertised) and welcome (selected) handshake frames. JSON is the
// unnamed default and never appears in a handshake.
const wireCodecBinary = "bin1"

// wireForceJSON is the Wire config value (ExecBackend.Wire,
// RemoteBackend.Wire, WorkerOptions.Wire) that pins a peer to JSON
// frames, for mixed-fleet tests and debugging; empty means negotiate.
const wireForceJSON = "json"

const (
	binMagic   = 0xB5 // first payload byte; JSON payloads start with '{'
	binVersion = 1
)

// Binary message kinds.
const (
	wireKindWork      = 1 // coordinator → worker: cells + prefetch hints
	wireKindResults   = 2 // worker → coordinator: results or batch error
	wireKindHeartbeat = 3 // worker → coordinator: liveness (remote wire)
)

// wireMsg is the codec-neutral form of one frame after the handshake.
type wireMsg struct {
	kind      byte
	seq       uint64
	cells     []CellSpec
	prefetch  []string
	results   []CellResult
	err       string
	permanent bool
}

// wireOffer returns the codecs a peer advertises in its hello frame
// under the given Wire config value.
func wireOffer(wire string) []string {
	if wire == wireForceJSON {
		return nil
	}
	return []string{wireCodecBinary}
}

// negotiateCodec picks the frame codec from a hello's advertised list:
// the binary codec when both ends allow it, else JSON ("").
func negotiateCodec(offered []string, wire string) string {
	if wire == wireForceJSON {
		return ""
	}
	for _, c := range offered {
		if c == wireCodecBinary {
			return wireCodecBinary
		}
	}
	return ""
}

// wireStats counts frame payload bytes per codec, both directions;
// wire backends report the totals in BackendStats.
type wireStats struct {
	jsonBytes   atomic.Uint64
	binaryBytes atomic.Uint64
}

func (s *wireStats) count(codec string, n int) {
	if s == nil {
		return
	}
	if codec == wireCodecBinary {
		s.binaryBytes.Add(uint64(n))
	} else {
		s.jsonBytes.Add(uint64(n))
	}
}

// fill copies the counters into a stats block (omitempty keeps silent
// wires invisible).
func (s *wireStats) fill(b *BackendStats) {
	b.WireJSONBytes = s.jsonBytes.Load()
	b.WireBinaryBytes = s.binaryBytes.Load()
}

// writeRawFrame emits a 4-byte big-endian length followed by payload.
func writeRawFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("frame of %d bytes exceeds the %d-byte protocol bound", len(payload), maxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRawFrame reads one length-prefixed payload. A clean EOF before
// the header returns io.EOF; EOF mid-frame returns io.ErrUnexpectedEOF.
func readRawFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("frame of %d bytes exceeds the %d-byte protocol bound", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// encodeWireMsg renders m as a binary payload.
func encodeWireMsg(m *wireMsg) []byte {
	w := snap.NewWriter(64)
	w.U8(binMagic)
	w.U8(binVersion)
	w.U8(m.kind)
	w.U64(m.seq)
	switch m.kind {
	case wireKindWork:
		w.Len(len(m.prefetch))
		for _, p := range m.prefetch {
			w.Bytes8([]byte(p))
		}
		w.Len(len(m.cells))
		for i := range m.cells {
			encodeSpecBin(w, &m.cells[i])
		}
	case wireKindResults:
		w.Bool(m.permanent)
		w.Bytes8([]byte(m.err))
		w.Len(len(m.results))
		for i := range m.results {
			encodeResultBin(w, &m.results[i])
		}
	case wireKindHeartbeat:
	}
	return w.Bytes()
}

// decodeWireMsg parses a binary payload back into a wireMsg.
func decodeWireMsg(payload []byte) (*wireMsg, error) {
	if len(payload) < 3 || payload[0] != binMagic {
		return nil, fmt.Errorf("binary frame lacks magic byte (got %d payload bytes)", len(payload))
	}
	if payload[1] != binVersion {
		return nil, fmt.Errorf("binary frame version %d, want %d", payload[1], binVersion)
	}
	r := snap.NewReader(payload[2:])
	m := &wireMsg{kind: r.U8(), seq: r.U64()}
	switch m.kind {
	case wireKindWork:
		in := stringInterner{}
		if n := r.Len(); n > 0 {
			m.prefetch = make([]string, n)
			for i := range m.prefetch {
				m.prefetch[i] = in.str(r.Bytes8())
			}
		}
		if n := r.Len(); n > 0 {
			m.cells = make([]CellSpec, n)
			for i := range m.cells {
				decodeSpecBin(r, &m.cells[i], in)
			}
		}
	case wireKindResults:
		m.permanent = r.Bool()
		m.err = string(r.Bytes8())
		if n := r.Len(); n > 0 {
			m.results = make([]CellResult, n)
			for i := range m.results {
				decodeResultBin(r, &m.results[i])
			}
		}
	case wireKindHeartbeat:
	default:
		return nil, fmt.Errorf("binary frame kind %d unknown", m.kind)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("binary frame: %w", err)
	}
	return m, nil
}

// encodeSpecBin writes one CellSpec. Params fields are written in
// declaration order; adding a Params field requires bumping binVersion
// (mixed-version fleets then fall back to JSON, which is tolerant).
func encodeSpecBin(w *snap.Writer, s *CellSpec) {
	w.Bytes8([]byte(s.Scenario))
	w.Bytes8([]byte(s.Scope))
	w.Int(s.Shard)
	w.U64(s.Seed)
	w.U64(s.RootSeed)
	w.Bytes8([]byte(s.Locality))
	p := &s.Params
	w.Int(p.Records)
	w.Int(p.MaxWorkloads)
	w.Int(p.MaxPairs)
	w.Int(p.Trials)
	w.Int(p.Budget)
	w.Int(p.Bits)
	w.F64(p.R)
	w.Len(len(p.Sweep))
	for _, v := range p.Sweep {
		w.F64(v)
	}
	w.Bytes8([]byte(p.Workload))
	w.Bytes8([]byte(p.WorkloadSpec))
}

// stringInterner dedups the small string vocabulary of a work frame —
// scenario, scope, workload, and locality names repeat across every
// cell in a batch, so a decoded chunk allocates each distinct string
// once instead of once per cell.
type stringInterner map[string]string

func (in stringInterner) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in[string(b)]; ok {
		return s
	}
	s := string(b)
	in[s] = s
	return s
}

func decodeSpecBin(r *snap.Reader, s *CellSpec, in stringInterner) {
	s.Scenario = in.str(r.Bytes8())
	s.Scope = in.str(r.Bytes8())
	s.Shard = r.Int()
	s.Seed = r.U64()
	s.RootSeed = r.U64()
	s.Locality = in.str(r.Bytes8())
	p := &s.Params
	p.Records = r.Int()
	p.MaxWorkloads = r.Int()
	p.MaxPairs = r.Int()
	p.Trials = r.Int()
	p.Budget = r.Int()
	p.Bits = r.Int()
	p.R = r.F64()
	if n := r.Len(); n > 0 {
		p.Sweep = make([]float64, n)
		for i := range p.Sweep {
			p.Sweep[i] = r.F64()
		}
	}
	p.Workload = in.str(r.Bytes8())
	p.WorkloadSpec = in.str(r.Bytes8())
}

// encodeResultBin writes one wire-form CellResult (a worker calls
// encodeWire before framing, so the live value/err fields are empty).
func encodeResultBin(w *snap.Writer, r *CellResult) {
	w.Int(r.Shard)
	w.Bytes8(r.Value)
	w.Bytes8([]byte(r.Err))
	w.Bool(r.Canceled)
	w.U64(uint64(r.ElapsedUS))
}

func decodeResultBin(r *snap.Reader, res *CellResult) {
	res.Shard = r.Int()
	if b := r.Bytes8(); len(b) > 0 {
		// Copy out of the frame buffer: results outlive the frame.
		res.Value = append([]byte(nil), b...)
	}
	res.Err = string(r.Bytes8())
	res.Canceled = r.Bool()
	res.ElapsedUS = int64(r.U64())
}
