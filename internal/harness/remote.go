package harness

// Elastic network execution: RemoteBackend is a TCP coordinator for a
// dynamic worker fleet. Workers dial in (`stbpu-suite -worker -connect
// host:port`), speak the same length-prefixed CellSpec/CellResult
// frames as the exec backend (JSON by default, the compact binary
// codec when the hello/welcome handshake negotiates it — see wire.go),
// and may join or leave at any point in a run:
//
//   - Batches split into chunks pulled by whichever workers are live;
//     a worker that joins mid-run starts pulling immediately. Chunks
//     never span locality keys, and dispatch is locality-aware: a
//     chunk prefers the worker whose trace/snapshot caches are already
//     warm for its key (the worker that last served it, else a
//     rendezvous-hash choice that stays stable as the fleet changes),
//     falling back to plain oldest-first work sharing whenever the
//     preferred worker is busy — an idle fleet never starves.
//   - Liveness is heartbeat-based: workers send a heartbeat frame on a
//     coordinator-chosen cadence, and a connection silent past the
//     heartbeat timeout is declared dead. Its in-flight chunk requeues
//     (filtered to the cells no other copy has delivered yet).
//   - Stragglers are handled by speculative re-execution: when the
//     queue is drained and a worker sits idle while another holds a
//     chunk past the straggler threshold, the idle worker re-runs the
//     chunk's missing cells. The first result to arrive for a cell
//     address wins; later duplicates are discarded. Cells are pure
//     functions of (scenario, params, scope, shard, rootSeed), so
//     duplicate execution is bit-identical and dedup by shard is safe.
//
// The determinism contract therefore survives any fleet shape: results
// merge by shard exactly as with every other backend, and the suite
// document is byte-identical to a local run modulo the stats blocks.
// See docs/ARCHITECTURE.md "The worker fleet".

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// remoteProtoVersion gates the hello/welcome handshake.
	remoteProtoVersion = 1
	// remoteChunkTarget is how many chunks per live worker a batch
	// splits into; small chunks keep late joiners and steals effective.
	remoteChunkTarget = 4
	// remoteMaxChunkAttempts bounds how often one chunk may be
	// (re)dispatched before the run fails — a chunk that keeps killing
	// workers or erroring is reported, not retried forever.
	remoteMaxChunkAttempts = 10
	// remoteHandshakeTimeout bounds the hello/welcome exchange and every
	// individual frame write.
	remoteHandshakeTimeout = 10 * time.Second
)

// remoteHello is the worker's first frame after dialing.
type remoteHello struct {
	Proto int `json:"proto"`
	// Name labels the worker in fleet stats (conventionally host/pid).
	Name string `json:"name,omitempty"`
	// Codecs advertises the frame codecs the worker can speak beyond
	// JSON (see wire.go); old workers omit it and stay on JSON.
	Codecs []string `json:"codecs,omitempty"`
}

// remoteWelcome is the coordinator's handshake reply.
type remoteWelcome struct {
	Proto int `json:"proto"`
	// HeartbeatMS is the heartbeat cadence the coordinator expects.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// TraceDir, when nonempty, is the coordinator's persistent trace
	// tier; a worker without its own -trace-dir adopts it, so trace
	// generation is a one-time cost per machine sharing the directory.
	TraceDir string `json:"trace_dir,omitempty"`
	// TraceMajor and TraceMmap, when present, carry the coordinator's
	// scheduling and mmap-tier settings; a worker that got no explicit
	// local setting adopts them. Absent (nil — older coordinators) the
	// worker keeps its own defaults; either way results are identical,
	// only execution shape differs.
	TraceMajor *bool `json:"trace_major,omitempty"`
	TraceMmap  *bool `json:"trace_mmap,omitempty"`
	// Snapshots and SnapDir carry the coordinator's warm-state snapshot
	// tier settings, adopted the same way: the toggle when the worker
	// got no explicit local setting, the checkpoint directory when the
	// worker has none of its own. Results are bit-identical either way;
	// only the amount of warmup replay differs.
	Snapshots *bool  `json:"snapshots,omitempty"`
	SnapDir   string `json:"snap_dir,omitempty"`
	// WorkloadSpecs carries the coordinator's raw JSON workload-spec
	// documents; a joining worker registers them before serving cells,
	// so a bare `-worker -connect` fleet resolves the same spec
	// workload names the coordinator schedules.
	WorkloadSpecs []string `json:"workload_specs,omitempty"`
	// Codec is the frame codec the coordinator selected from the
	// hello's advertised list; empty means JSON. All frames after the
	// handshake use it, in both directions.
	Codec string `json:"codec,omitempty"`
}

// remoteWork is one coordinator → worker frame after the handshake.
type remoteWork struct {
	Seq   uint64     `json:"seq"`
	Cells []CellSpec `json:"cells"`
	// Prefetch names locality keys the worker is likely to serve next,
	// so it can warm trace/snapshot tiers while computing this chunk.
	// Advisory: results never depend on it.
	Prefetch []string `json:"prefetch,omitempty"`
}

// remoteReply is one worker → coordinator frame after the handshake:
// either a heartbeat or the results of the chunk identified by Seq.
type remoteReply struct {
	Type      string       `json:"type"` // "heartbeat" or "results"
	Seq       uint64       `json:"seq,omitempty"`
	Results   []CellResult `json:"results,omitempty"`
	Err       string       `json:"err,omitempty"`
	Permanent bool         `json:"permanent,omitempty"`
}

// RemoteBackend executes cells on an elastic fleet of TCP workers. The
// zero value is usable: Run listens lazily on Addr (default
// 127.0.0.1:0) and waits up to JoinGrace for the first worker. The
// exported fields must be set before the first Run or Start.
type RemoteBackend struct {
	// Addr is the TCP listen address, e.g. ":7701" (empty means
	// 127.0.0.1:0, useful for tests).
	Addr string
	// TraceDir is forwarded to joining workers that have no trace tier
	// of their own (see remoteWelcome.TraceDir).
	TraceDir string
	// TraceMajor and TraceMmap are forwarded to joining workers (see
	// remoteWelcome); nil leaves each worker's local setting in place.
	TraceMajor *bool
	TraceMmap  *bool
	// Snapshots and SnapDir are forwarded to joining workers (see
	// remoteWelcome.Snapshots); nil/empty leave worker settings alone.
	Snapshots *bool
	SnapDir   string
	// WorkloadSpecs holds raw JSON workload-spec documents forwarded to
	// every joining worker via the welcome frame (see
	// remoteWelcome.WorkloadSpecs).
	WorkloadSpecs []string
	// HeartbeatTimeout declares a worker dead after this much silence
	// (<= 0 means 5s). Workers heartbeat at a quarter of it.
	HeartbeatTimeout time.Duration
	// MinStragglerAge is the floor below which an in-flight chunk is
	// never considered a straggler (<= 0 means 500ms).
	MinStragglerAge time.Duration
	// StragglerFactor scales the median completed-chunk duration into
	// the straggler threshold: a chunk in flight longer than
	// max(MinStragglerAge, StragglerFactor × median) may be
	// speculatively re-executed by an idle worker (<= 0 means 3).
	StragglerFactor float64
	// JoinGrace is how long a Run tolerates an empty fleet — at start or
	// after every worker died — before failing (<= 0 means 60s).
	JoinGrace time.Duration
	// Affinity toggles locality-aware dispatch (nil means on). With it
	// off, dispatch is plain oldest-first work sharing and no prefetch
	// hints are sent; results are identical either way.
	Affinity *bool
	// Wire selects the frame codec policy: empty negotiates the binary
	// codec with workers that advertise it, "json" pins every worker to
	// JSON frames.
	Wire string

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	nextSeq  uint64
	nextID   int
	fleet    map[*remoteWorker]struct{}
	roster   []*remoteWorker // every worker that ever joined, join order
	inflight map[uint64]*remoteChunk
	runs     map[*remoteRun]struct{}
	// lastServed maps a locality key to the worker that most recently
	// received a chunk carrying it — the warmest home for the next one.
	lastServed map[string]*remoteWorker
	wire       wireStats
	// lastWorkerAt is when the fleet last had a live member; JoinGrace
	// measures from here (or from the run start, whichever is later).
	lastWorkerAt time.Time
	cellsTotal   uint64
	retries      uint64
	joins        uint64
	leaves       uint64

	sink   atomic.Pointer[cellNotify]
	wallNS atomic.Int64
}

// remoteWorker is one connected fleet member. Mutable state is guarded
// by the backend mutex except the write path (wmu serializes frame
// writes to the connection).
type remoteWorker struct {
	id    int
	name  string
	conn  net.Conn
	codec string // negotiated frame codec ("" = JSON)
	wmu   sync.Mutex

	dead        bool
	busy        *remoteChunk
	cells       uint64
	steals      uint64
	speculative uint64
	// served records every locality key this worker has received, so
	// steals can prefer stragglers whose artifacts it already holds.
	served         map[string]struct{}
	affinityHits   uint64
	affinityMisses uint64
}

// remoteChunk is one dispatchable slice of a run's batch. A chunk is
// either pending (queued), or in flight on exactly one worker; a
// speculative clone is a separate chunk covering the original's
// not-yet-accepted shards.
type remoteChunk struct {
	run   *remoteRun
	specs []CellSpec
	// locality is the warm-artifact key shared by every spec in the
	// chunk (chunking never mixes keys; "" when cells carry none).
	locality string
	// seq is the wire id of the current dispatch (0 when pending).
	seq      uint64
	worker   *remoteWorker
	sentAt   time.Time
	attempts int
	// speculative marks a straggler re-execution clone.
	speculative bool
	// clones counts this chunk's in-flight speculative copies, so a
	// straggler is not duplicated more than once at a time.
	clones int
	// source is the chunk a speculative clone duplicates.
	source *remoteChunk
}

// remoteRun is one Run call's scheduling state, guarded by the backend
// mutex.
type remoteRun struct {
	started   time.Time
	specOf    map[int]CellSpec
	got       map[int]CellResult
	remaining int
	pending   []*remoteChunk
	inflight  map[*remoteChunk]struct{}
	// durations collects completed-chunk wall times for the straggler
	// median.
	durations []time.Duration
	err       error
	done      chan struct{}
}

func (r *remoteRun) finished() bool { return r.err != nil || r.remaining == 0 }

// Name implements Backend.
func (b *RemoteBackend) Name() string { return "remote" }

func (b *RemoteBackend) setSink(fn cellNotify) { b.sink.Store(&fn) }

func (b *RemoteBackend) notify(c Cell, spec CellSpec, res CellResult) {
	if fn := b.sink.Load(); fn != nil && *fn != nil {
		(*fn)(c, spec, res)
	}
}

func (b *RemoteBackend) heartbeatTimeout() time.Duration {
	if b.HeartbeatTimeout > 0 {
		return b.HeartbeatTimeout
	}
	return 5 * time.Second
}

func (b *RemoteBackend) minStragglerAge() time.Duration {
	if b.MinStragglerAge > 0 {
		return b.MinStragglerAge
	}
	return 500 * time.Millisecond
}

func (b *RemoteBackend) stragglerFactor() float64 {
	if b.StragglerFactor > 0 {
		return b.StragglerFactor
	}
	return 3
}

func (b *RemoteBackend) joinGrace() time.Duration {
	if b.JoinGrace > 0 {
		return b.JoinGrace
	}
	return 60 * time.Second
}

// Start begins listening and accepting workers, returning the bound
// address (which resolves an ephemeral port). Run calls it lazily; call
// it explicitly to learn the address before launching workers.
func (b *RemoteBackend) Start() (net.Addr, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errors.New("remote backend is closed")
	}
	if b.ln != nil {
		return b.ln.Addr(), nil
	}
	addr := b.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote backend: listen %s: %w", addr, err)
	}
	b.ln = ln
	if b.fleet == nil {
		b.fleet = map[*remoteWorker]struct{}{}
		b.inflight = map[uint64]*remoteChunk{}
		b.runs = map[*remoteRun]struct{}{}
		b.lastServed = map[string]*remoteWorker{}
	}
	go b.acceptLoop(ln)
	return ln.Addr(), nil
}

func (b *RemoteBackend) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go b.admit(conn)
	}
}

// admit runs the handshake (always JSON-framed) and, on success, adds
// the worker to the fleet and starts its read loop.
func (b *RemoteBackend) admit(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(remoteHandshakeTimeout))
	var hello remoteHello
	n, err := readJSONFrame(conn, &hello)
	if err != nil || hello.Proto != remoteProtoVersion {
		conn.Close()
		return
	}
	b.wire.count("", n)
	codec := negotiateCodec(hello.Codecs, b.Wire)
	welcome := remoteWelcome{
		Proto:         remoteProtoVersion,
		HeartbeatMS:   heartbeatInterval(b.heartbeatTimeout()).Milliseconds(),
		TraceDir:      b.TraceDir,
		TraceMajor:    b.TraceMajor,
		TraceMmap:     b.TraceMmap,
		Snapshots:     b.Snapshots,
		SnapDir:       b.SnapDir,
		WorkloadSpecs: b.WorkloadSpecs,
		Codec:         codec,
	}
	n, err = writeJSONFrame(conn, welcome)
	if err != nil {
		conn.Close()
		return
	}
	b.wire.count("", n)
	_ = conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	name := hello.Name
	if name == "" {
		name = "worker"
	}
	w := &remoteWorker{id: b.nextID, name: fmt.Sprintf("%s#%d", name, b.nextID), conn: conn, codec: codec, served: map[string]struct{}{}}
	b.nextID++
	b.joins++
	b.fleet[w] = struct{}{}
	b.roster = append(b.roster, w)
	b.lastWorkerAt = time.Now()
	b.dispatchLocked()
	b.mu.Unlock()

	go b.serveWorker(w)
}

// heartbeatInterval derives the worker heartbeat cadence from the
// coordinator's patience: a quarter of the timeout, clamped to
// [25ms, 1s], so several beats fit into every timeout window.
func heartbeatInterval(timeout time.Duration) time.Duration {
	iv := timeout / 4
	if iv < 25*time.Millisecond {
		iv = 25 * time.Millisecond
	}
	if iv > time.Second {
		iv = time.Second
	}
	return iv
}

// serveWorker is the coordinator-side read loop for one worker. Every
// frame refreshes the read deadline, so heartbeat-based liveness needs
// no extra timer: a connection silent past the heartbeat timeout fails
// the read, which fails the worker, which requeues its chunk.
func (b *RemoteBackend) serveWorker(w *remoteWorker) {
	for {
		_ = w.conn.SetReadDeadline(time.Now().Add(b.heartbeatTimeout()))
		payload, err := readRawFrame(w.conn)
		if err != nil {
			b.failWorker(w, err)
			return
		}
		b.wire.count(w.codec, len(payload))
		var reply remoteReply
		if len(payload) > 0 && payload[0] == binMagic {
			m, err := decodeWireMsg(payload)
			if err != nil {
				b.failWorker(w, err)
				return
			}
			switch m.kind {
			case wireKindHeartbeat:
				reply.Type = "heartbeat"
			case wireKindResults:
				reply = remoteReply{Type: "results", Seq: m.seq, Results: m.results, Err: m.err, Permanent: m.permanent}
			default:
				b.failWorker(w, fmt.Errorf("frame kind %d from worker", m.kind))
				return
			}
		} else if err := json.Unmarshal(payload, &reply); err != nil {
			b.failWorker(w, err)
			return
		}
		switch reply.Type {
		case "heartbeat":
			// The read deadline reset above is the entire point.
		case "results":
			b.handleResults(w, &reply)
		}
	}
}

// failWorker removes a worker from the fleet and requeues its in-flight
// chunk.
func (b *RemoteBackend) failWorker(w *remoteWorker, cause error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w.dead {
		return
	}
	w.dead = true
	w.conn.Close()
	delete(b.fleet, w)
	b.leaves++
	if chunk := w.busy; chunk != nil {
		w.busy = nil
		b.requeueLocked(chunk, fmt.Errorf("worker %s lost: %w", w.name, cause))
	}
	b.dispatchLocked()
}

// requeueLocked returns an in-flight chunk to its run's queue, trimmed
// to the shards no other copy has delivered. Requires b.mu.
func (b *RemoteBackend) requeueLocked(chunk *remoteChunk, cause error) {
	delete(b.inflight, chunk.seq)
	chunk.seq = 0
	chunk.worker = nil
	run := chunk.run
	delete(run.inflight, chunk)
	if chunk.source != nil {
		chunk.source.clones--
	}
	if run.finished() {
		return
	}
	b.queueLocked(chunk, cause)
}

// queueLocked puts a detached chunk back on its run's queue, trimmed to
// the shards no other copy has delivered; a chunk out of dispatch
// attempts fails the run instead. Requires b.mu.
func (b *RemoteBackend) queueLocked(chunk *remoteChunk, cause error) {
	run := chunk.run
	missing := missingSpecs(run, chunk.specs)
	if len(missing) == 0 {
		// Another copy delivered everything; nothing left to redo. The
		// run may have been waiting on exactly this bookkeeping.
		b.maybeFinishLocked(run)
		return
	}
	if chunk.attempts >= remoteMaxChunkAttempts {
		b.failRunLocked(run, fmt.Errorf("chunk of %d cells failed %d dispatch attempts, last: %w",
			len(missing), chunk.attempts, cause))
		return
	}
	chunk.specs = missing
	b.retries += uint64(len(missing))
	run.pending = append(run.pending, chunk)
}

// missingSpecs filters specs to the shards the run has not accepted yet.
func missingSpecs(run *remoteRun, specs []CellSpec) []CellSpec {
	out := make([]CellSpec, 0, len(specs))
	for _, s := range specs {
		if _, ok := run.got[s.Shard]; !ok {
			out = append(out, s)
		}
	}
	return out
}

// handleResults merges one results frame: first result per shard wins,
// duplicates count as speculative waste, batch errors either fail the
// run (permanent) or requeue the chunk (transient).
func (b *RemoteBackend) handleResults(w *remoteWorker, reply *remoteReply) {
	b.mu.Lock()
	defer b.mu.Unlock()
	chunk := b.inflight[reply.Seq]
	if chunk == nil || chunk.worker != w {
		return // stale frame for a chunk already requeued elsewhere
	}
	delete(b.inflight, reply.Seq)
	chunk.seq = 0
	chunk.worker = nil
	w.busy = nil
	run := chunk.run
	delete(run.inflight, chunk)
	if chunk.source != nil {
		chunk.source.clones--
	}

	if reply.Err != "" {
		err := fmt.Errorf("remote worker %s: %s", w.name, reply.Err)
		if !run.finished() {
			if reply.Permanent {
				b.failRunLocked(run, Permanent(err))
			} else {
				// The worker stays in the fleet: a transient batch error
				// (say, a scenario its binary lacks) only requeues the
				// chunk, most likely to land on a different worker.
				b.queueLocked(chunk, err)
			}
		}
		b.dispatchLocked()
		return
	}

	accepted := 0
	for _, r := range reply.Results {
		if _, dup := run.got[r.Shard]; dup || run.finished() {
			// A speculative copy (or a copy landing after the run ended)
			// lost the race; bit-identity makes the discard safe.
			w.speculative++
			continue
		}
		run.got[r.Shard] = r
		run.remaining--
		w.cells++
		b.cellsTotal++
		accepted++
	}
	if accepted > 0 {
		run.durations = append(run.durations, time.Since(chunk.sentAt))
		if chunk.speculative {
			w.steals++
		}
	}
	b.maybeFinishLocked(run)
	b.dispatchLocked()
}

func (b *RemoteBackend) maybeFinishLocked(run *remoteRun) {
	if run.err == nil && run.remaining == 0 {
		if _, active := b.runs[run]; active {
			delete(b.runs, run)
			close(run.done)
		}
	}
}

func (b *RemoteBackend) failRunLocked(run *remoteRun, err error) {
	if _, active := b.runs[run]; !active || run.err != nil {
		return
	}
	run.err = err
	delete(b.runs, run)
	close(run.done)
}

// affinityOn resolves the tri-state Affinity flag (nil means on).
func (b *RemoteBackend) affinityOn() bool { return b.Affinity == nil || *b.Affinity }

// preferredWorkerLocked is the worker a locality key should land on:
// the worker that last served it while that worker remains live, else
// the rendezvous-hash champion among the live fleet. Rendezvous keeps
// placement stable as workers join and leave — only keys whose
// champion departed move. Requires b.mu.
func (b *RemoteBackend) preferredWorkerLocked(loc string) *remoteWorker {
	if w, ok := b.lastServed[loc]; ok && !w.dead {
		if _, live := b.fleet[w]; live {
			return w
		}
	}
	var best *remoteWorker
	var bestScore uint64
	for w := range b.fleet {
		if w.dead {
			continue
		}
		score := fnv1a(loc + "\x00" + w.name)
		if best == nil || score > bestScore || (score == bestScore && w.id < best.id) {
			best, bestScore = w, score
		}
	}
	return best
}

// dispatchLocked pairs idle workers with work. With affinity on, a
// first pass sends every pending chunk whose preferred worker is idle
// to that worker — holding a chunk for its warm home while the home is
// idle costs nothing. The second pass is plain work sharing: remaining
// idle workers drain the queue oldest-first (so an idle fleet never
// starves behind affinity), then speculate on stragglers. Requires
// b.mu; frame writes happen on fresh goroutines so the scheduler never
// blocks on a slow connection.
func (b *RemoteBackend) dispatchLocked() {
	if b.affinityOn() {
		for run := range b.runs {
			kept := run.pending[:0]
			for _, c := range run.pending {
				var w *remoteWorker
				if c.locality != "" {
					w = b.preferredWorkerLocked(c.locality)
				}
				if w != nil && !w.dead && w.busy == nil {
					b.assignLocked(w, c)
				} else {
					kept = append(kept, c)
				}
			}
			run.pending = kept
		}
	}
	for {
		w := b.idleWorkerLocked()
		if w == nil {
			return
		}
		chunk := b.nextChunkLocked(w)
		if chunk == nil {
			return
		}
		b.assignLocked(w, chunk)
	}
}

// assignLocked dispatches one chunk on one idle worker: affinity
// accounting, seq/inflight bookkeeping, and the async frame write.
// Requires b.mu.
func (b *RemoteBackend) assignLocked(w *remoteWorker, chunk *remoteChunk) {
	if loc := chunk.locality; loc != "" {
		// Hit/miss is judged against the preference before this very
		// assignment updates it; speculative clones are deliberate
		// cross-worker duplicates and stay out of the counters.
		if !chunk.speculative && b.affinityOn() {
			if b.preferredWorkerLocked(loc) == w {
				w.affinityHits++
			} else {
				w.affinityMisses++
			}
		}
		b.lastServed[loc] = w
		if w.served == nil {
			w.served = map[string]struct{}{}
		}
		w.served[loc] = struct{}{}
	}
	b.nextSeq++
	chunk.seq = b.nextSeq
	chunk.worker = w
	chunk.sentAt = time.Now()
	chunk.attempts++
	w.busy = chunk
	b.inflight[chunk.seq] = chunk
	chunk.run.inflight[chunk] = struct{}{}
	work := remoteWork{Seq: chunk.seq, Cells: chunk.specs}
	if b.affinityOn() {
		work.Prefetch = b.prefetchHintLocked(w, chunk)
	}
	go b.send(w, work)
}

// prefetchHintLocked names up to two locality keys w is likely to
// serve after chunk — pending chunks preferring w whose key differs
// from the one just dispatched — so the worker overlaps artifact loads
// with compute. Requires b.mu.
func (b *RemoteBackend) prefetchHintLocked(w *remoteWorker, chunk *remoteChunk) []string {
	var hints []string
	seen := map[string]bool{chunk.locality: true, "": true}
	for run := range b.runs {
		for _, c := range run.pending {
			if seen[c.locality] {
				continue
			}
			if b.preferredWorkerLocked(c.locality) != w {
				continue
			}
			seen[c.locality] = true
			hints = append(hints, c.locality)
			if len(hints) == 2 {
				return hints
			}
		}
	}
	return hints
}

// idleWorkerLocked returns a live idle worker, if any.
func (b *RemoteBackend) idleWorkerLocked() *remoteWorker {
	for w := range b.fleet {
		if !w.dead && w.busy == nil {
			return w
		}
	}
	return nil
}

// nextChunkLocked picks the next chunk for w: a queued chunk — one
// whose key w already serves when affinity is on, else the oldest —
// else a speculative clone of a straggler.
func (b *RemoteBackend) nextChunkLocked(w *remoteWorker) *remoteChunk {
	for run := range b.runs {
		if len(run.pending) == 0 {
			continue
		}
		pick := 0
		if b.affinityOn() {
			for i, c := range run.pending {
				if c.locality == "" {
					continue
				}
				if _, ok := w.served[c.locality]; ok {
					pick = i
					break
				}
			}
		}
		chunk := run.pending[pick]
		run.pending = append(run.pending[:pick], run.pending[pick+1:]...)
		return chunk
	}
	return b.speculateLocked(w)
}

// speculateLocked clones a straggling in-flight chunk for w to
// re-execute — preferring, with affinity on, the oldest straggler
// whose key w has served (its artifacts are already warm), else the
// oldest overall — or returns nil if nothing qualifies.
func (b *RemoteBackend) speculateLocked(w *remoteWorker) *remoteChunk {
	now := time.Now()
	var oldest, oldestServed *remoteChunk
	for run := range b.runs {
		threshold := b.stragglerThreshold(run)
		for c := range run.inflight {
			if c.speculative || c.clones > 0 {
				continue
			}
			if now.Sub(c.sentAt) < threshold {
				continue
			}
			if len(missingSpecs(run, c.specs)) == 0 {
				continue
			}
			if oldest == nil || c.sentAt.Before(oldest.sentAt) {
				oldest = c
			}
			if c.locality != "" {
				if _, ok := w.served[c.locality]; ok {
					if oldestServed == nil || c.sentAt.Before(oldestServed.sentAt) {
						oldestServed = c
					}
				}
			}
		}
	}
	pick := oldest
	if b.affinityOn() && oldestServed != nil {
		pick = oldestServed
	}
	if pick == nil {
		return nil
	}
	pick.clones++
	return &remoteChunk{
		run:         pick.run,
		specs:       missingSpecs(pick.run, pick.specs),
		locality:    pick.locality,
		speculative: true,
		source:      pick,
	}
}

// stragglerThreshold is how long a chunk may be in flight before an
// idle worker re-executes it: the configured floor, stretched by the
// run's median chunk duration once one exists.
func (b *RemoteBackend) stragglerThreshold(run *remoteRun) time.Duration {
	th := b.minStragglerAge()
	if n := len(run.durations); n > 0 {
		ds := append([]time.Duration(nil), run.durations...)
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		if scaled := time.Duration(b.stragglerFactor() * float64(ds[n/2])); scaled > th {
			th = scaled
		}
	}
	return th
}

// send writes one work frame in the worker's codec, failing the worker
// on error.
func (b *RemoteBackend) send(w *remoteWorker, work remoteWork) {
	var payload []byte
	var err error
	if w.codec == wireCodecBinary {
		payload = encodeWireMsg(&wireMsg{kind: wireKindWork, seq: work.Seq, cells: work.Cells, prefetch: work.Prefetch})
	} else {
		payload, err = json.Marshal(work)
	}
	if err == nil {
		b.wire.count(w.codec, len(payload))
		w.wmu.Lock()
		_ = w.conn.SetWriteDeadline(time.Now().Add(remoteHandshakeTimeout))
		err = writeRawFrame(w.conn, payload)
		w.wmu.Unlock()
	}
	if err != nil {
		b.failWorker(w, fmt.Errorf("send chunk: %w", err))
	}
}

// Run implements Backend: the batch is chunked, scheduled across the
// live fleet, and survives workers joining, leaving, and straggling;
// Run returns when every shard has exactly one accepted result (or the
// run fails permanently).
func (b *RemoteBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	start := time.Now()
	defer func() { b.wallNS.Add(int64(time.Since(start))) }()
	if len(specs) == 0 {
		return nil, nil
	}
	if _, err := b.Start(); err != nil {
		return nil, err
	}

	run := &remoteRun{
		started:   time.Now(),
		specOf:    make(map[int]CellSpec, len(specs)),
		got:       make(map[int]CellResult, len(specs)),
		remaining: len(specs),
		inflight:  map[*remoteChunk]struct{}{},
		done:      make(chan struct{}),
	}
	for _, s := range specs {
		run.specOf[s.Shard] = s
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errors.New("remote backend is closed")
	}
	live := len(b.fleet)
	if live < 1 {
		live = 1
	}
	chunkSize := (len(specs) + live*remoteChunkTarget - 1) / (live * remoteChunkTarget)
	if chunkSize < 1 {
		chunkSize = 1
	}
	// Chunks group by locality key (first-appearance order — specs
	// arrive in shard order, so this is stable and results merge
	// identically) and never span two keys: affinity routing then has
	// clean units to place, and a chunk's cells always share their warm
	// artifacts.
	order := make([]string, 0, 8)
	byLoc := map[string][]CellSpec{}
	for _, s := range specs {
		if _, ok := byLoc[s.Locality]; !ok {
			order = append(order, s.Locality)
		}
		byLoc[s.Locality] = append(byLoc[s.Locality], s)
	}
	for _, loc := range order {
		group := byLoc[loc]
		for off := 0; off < len(group); off += chunkSize {
			end := off + chunkSize
			if end > len(group) {
				end = len(group)
			}
			run.pending = append(run.pending, &remoteChunk{run: run, specs: group[off:end], locality: loc})
		}
	}
	b.runs[run] = struct{}{}
	b.dispatchLocked()
	b.mu.Unlock()

	tickDone := make(chan struct{})
	defer close(tickDone)
	go b.tickRun(run, tickDone)

	select {
	case <-run.done:
	case <-ctx.Done():
		b.mu.Lock()
		b.failRunLocked(run, ctx.Err())
		b.mu.Unlock()
		<-run.done
	}

	b.mu.Lock()
	err := run.err
	results := make([]CellResult, 0, len(run.got))
	for _, r := range run.got {
		results = append(results, r)
	}
	b.mu.Unlock()
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	sortResultsByShard(results)
	// Stream completions only after the whole batch succeeded, mirroring
	// ExecBackend: a failed batch must stay invisible to the pool's cell
	// accounting.
	for i := range results {
		r := &results[i]
		s := run.specOf[r.Shard]
		b.notify(Cell{
			Backend: b.Name(), Scope: s.Scope, Shard: r.Shard, Seed: s.Seed,
			Elapsed: time.Duration(r.ElapsedUS) * time.Microsecond, Err: r.CellErr(),
		}, s, *r)
	}
	return results, nil
}

// tickRun drives the time-based scheduling decisions for one run —
// straggler speculation and the empty-fleet join grace — until the run
// completes or its Run call returns.
func (b *RemoteBackend) tickRun(run *remoteRun, stop <-chan struct{}) {
	tick := b.minStragglerAge() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-run.done:
			return
		case <-stop:
			return
		case <-t.C:
		}
		b.mu.Lock()
		if len(b.fleet) == 0 {
			ref := run.started
			if b.lastWorkerAt.After(ref) {
				ref = b.lastWorkerAt
			}
			if time.Since(ref) > b.joinGrace() {
				b.failRunLocked(run, fmt.Errorf("no workers connected to %s for %v (fleet empty; %d joined, %d left)",
					b.listenAddrLocked(), b.joinGrace(), b.joins, b.leaves))
			}
		}
		b.dispatchLocked()
		b.mu.Unlock()
	}
}

func (b *RemoteBackend) listenAddrLocked() string {
	if b.ln == nil {
		return b.Addr
	}
	return b.ln.Addr().String()
}

// BackendStats implements StatsReporter: one fleet-level entry with a
// per-worker breakdown (every worker that ever joined, in join order).
func (b *RemoteBackend) BackendStats() []BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	ws := make([]WorkerStats, 0, len(b.roster))
	for _, w := range b.roster {
		ws = append(ws, WorkerStats{
			Worker: w.name, Cells: w.cells, Steals: w.steals, Speculative: w.speculative,
			AffinityHits: w.affinityHits, AffinityMisses: w.affinityMisses,
		})
	}
	stats := BackendStats{
		Backend: b.Name(),
		Cells:   b.cellsTotal,
		Retries: b.retries,
		WallMS:  time.Duration(b.wallNS.Load()).Milliseconds(),
		Joins:   b.joins,
		Leaves:  b.leaves,
		Workers: ws,
	}
	b.wire.fill(&stats)
	return []BackendStats{stats}
}

// Close shuts the coordinator down: the listener stops accepting,
// active runs fail, and worker connections close (which each worker
// treats as a clean shutdown).
func (b *RemoteBackend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	ln := b.ln
	workers := make([]*remoteWorker, 0, len(b.fleet))
	for w := range b.fleet {
		workers = append(workers, w)
	}
	for run := range b.runs {
		run.err = errors.New("remote backend closed")
		delete(b.runs, run)
		close(run.done)
	}
	b.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, w := range workers {
		w.conn.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Worker side.

// ServeRemoteWorker dials a RemoteBackend coordinator and serves cell
// chunks until the coordinator closes the connection (the clean
// shutdown signal) or ctx is canceled. Heartbeats flow on a separate
// goroutine at the cadence the coordinator requested, so a worker deep
// in a long batch still proves liveness. If opts.TraceDir is empty and
// the coordinator advertises one, the worker adopts it, so every
// worker process on a machine shares one persistent trace tier.
func ServeRemoteWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("worker: connect %s: %w", addr, err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
	}

	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	_ = conn.SetDeadline(time.Now().Add(remoteHandshakeTimeout))
	hello := remoteHello{
		Proto:  remoteProtoVersion,
		Name:   fmt.Sprintf("%s/%d", host, os.Getpid()),
		Codecs: wireOffer(opts.Wire),
	}
	if err := writeFrame(conn, hello); err != nil {
		return fmt.Errorf("worker: hello: %w", err)
	}
	var welcome remoteWelcome
	if err := readFrame(conn, &welcome); err != nil {
		return fmt.Errorf("worker: welcome: %w", err)
	}
	if welcome.Proto != remoteProtoVersion {
		return fmt.Errorf("worker: coordinator speaks protocol %d, want %d", welcome.Proto, remoteProtoVersion)
	}
	switch welcome.Codec {
	case "", wireCodecBinary:
	default:
		return fmt.Errorf("worker: coordinator selected unknown codec %q", welcome.Codec)
	}
	codec := welcome.Codec
	_ = conn.SetDeadline(time.Time{})
	if opts.TraceDir == "" {
		opts.TraceDir = welcome.TraceDir
	}
	if opts.TraceMajor == nil {
		opts.TraceMajor = welcome.TraceMajor
	}
	if !opts.TraceMmap && welcome.TraceMmap != nil {
		opts.TraceMmap = *welcome.TraceMmap
	}
	if opts.Snapshots == nil {
		opts.Snapshots = welcome.Snapshots
	}
	if opts.SnapDir == "" {
		opts.SnapDir = welcome.SnapDir
	}
	// Coordinator-forwarded specs compose with any the worker loaded
	// locally; content-hashed names make double registration harmless.
	opts.WorkloadSpecs = append(opts.WorkloadSpecs, welcome.WorkloadSpecs...)
	if err := registerWorkloadSpecs(opts.WorkloadSpecs); err != nil {
		return err
	}
	store, err := newWorkerStore(opts)
	if err != nil {
		return err
	}
	snaps, err := newWorkerSnapStore(opts)
	if err != nil {
		return err
	}
	env := cellEnvFor(opts, store, snaps)

	var wmu sync.Mutex
	send := func(reply remoteReply) error {
		var payload []byte
		var err error
		if codec == wireCodecBinary {
			m := wireMsg{seq: reply.Seq, results: reply.Results, err: reply.Err, permanent: reply.Permanent}
			if reply.Type == "heartbeat" {
				m.kind = wireKindHeartbeat
			} else {
				m.kind = wireKindResults
			}
			payload = encodeWireMsg(&m)
		} else if payload, err = json.Marshal(reply); err != nil {
			return err
		}
		wmu.Lock()
		defer wmu.Unlock()
		_ = conn.SetWriteDeadline(time.Now().Add(remoteHandshakeTimeout))
		return writeRawFrame(conn, payload)
	}

	// The connection doubles as the cancellation signal: closing it
	// unblocks the read loop below and stops the heartbeats.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()
	heartbeat := welcome.HeartbeatMS
	if heartbeat <= 0 {
		heartbeat = 1000
	}
	go func() {
		t := time.NewTicker(time.Duration(heartbeat) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if send(remoteReply{Type: "heartbeat"}) != nil {
					return
				}
			}
		}
	}()

	for {
		payload, err := readRawFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil // coordinator closed the connection: clean shutdown
			}
			return fmt.Errorf("worker: read chunk: %w", err)
		}
		var work remoteWork
		if len(payload) > 0 && payload[0] == binMagic {
			m, err := decodeWireMsg(payload)
			if err != nil {
				return fmt.Errorf("worker: read chunk: %w", err)
			}
			work = remoteWork{Seq: m.seq, Cells: m.cells, Prefetch: m.prefetch}
		} else if err := json.Unmarshal(payload, &work); err != nil {
			return fmt.Errorf("worker: read chunk: %w", err)
		}
		if len(work.Prefetch) > 0 {
			env.prefetch(work.Prefetch)
		}
		reply := remoteReply{Type: "results", Seq: work.Seq}
		results, err := executeCells(ctx, work.Cells, env)
		if err != nil {
			reply.Err = err.Error()
			reply.Permanent = errors.Is(err, ErrPermanent)
		} else {
			reply.Results = results
		}
		if err := send(reply); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("worker: send results: %w", err)
		}
	}
}
