package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// flakyBackend fails batches at the transport level: the first failN Run
// calls execute part of the batch (mid-batch death) and then report a
// batch error, after which it behaves like its inner local backend.
type flakyBackend struct {
	inner *LocalBackend
	calls atomic.Uint64
	failN uint64
}

func (f *flakyBackend) Name() string { return "flaky" }

func (f *flakyBackend) Close() error { return nil }

func (f *flakyBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	if f.calls.Add(1) <= f.failN {
		// Execute half the batch before dying, like a worker lost mid-run;
		// the partial work must be invisible in the final merged results.
		if len(specs) > 1 {
			if _, err := f.inner.Run(ctx, specs[:len(specs)/2]); err != nil {
				return nil, err
			}
		}
		return nil, errors.New("flaky backend dropped the batch")
	}
	return f.inner.Run(ctx, specs)
}

func mapSquares(t *testing.T, pool *Pool, n int) []float64 {
	t.Helper()
	out, err := Map(context.Background(), pool, "squares", n,
		func(ctx context.Context, shard int, seed uint64) (float64, error) {
			return float64(seed%1000) * float64(shard), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMultiBackendRequeueBitIdentical is the backend failure-path gate:
// a backend that errors mid-batch must trigger requeue onto another
// backend, and the final results must be bit-identical to a pure local
// run.
func TestMultiBackendRequeueBitIdentical(t *testing.T) {
	const n = 64
	want := mapSquares(t, NewPool(2, 77), n)

	flaky := &flakyBackend{inner: NewLocalBackend(2), failN: 3}
	multi := NewMultiBackend(
		WeightedBackend{Backend: flaky, Weight: 2},
		WeightedBackend{Backend: NewLocalBackend(2), Weight: 1},
	)
	pool := NewPool(2, 77)
	pool.SetBackend(multi)
	got := mapSquares(t, pool, n)

	if !reflect.DeepEqual(got, want) {
		t.Error("requeued results differ from a pure local run")
	}
	stats := multi.BackendStats()
	var retries uint64
	for _, s := range stats {
		if s.Backend == "flaky" {
			retries = s.Retries
		}
	}
	if retries == 0 {
		t.Errorf("flaky backend failures were not accounted as retries: %+v", stats)
	}
	if flaky.calls.Load() <= flaky.failN {
		t.Errorf("flaky backend was never retried with work after recovering (calls=%d)", flaky.calls.Load())
	}
}

// TestMultiBackendAllBackendsFail pins the terminal case: when every
// backend fails a chunk, Run reports the failure instead of hanging or
// silently dropping cells.
func TestMultiBackendAllBackendsFail(t *testing.T) {
	multi := NewMultiBackend(
		WeightedBackend{Backend: &flakyBackend{inner: NewLocalBackend(1), failN: ^uint64(0)}},
		WeightedBackend{Backend: &flakyBackend{inner: NewLocalBackend(1), failN: ^uint64(0)}},
	)
	pool := NewPool(1, 1)
	pool.SetBackend(multi)
	_, err := Map(context.Background(), pool, "doomed", 8,
		func(ctx context.Context, shard int, seed uint64) (int, error) { return shard, nil })
	if err == nil || !strings.Contains(err.Error(), "dropped the batch") {
		t.Fatalf("err = %v, want the backends' batch failure", err)
	}
}

// shortBackend returns fewer results than specs without any error — a
// broken backend Map must refuse rather than hand back zero-filled data.
type shortBackend struct{ inner *LocalBackend }

func (s *shortBackend) Name() string { return "short" }
func (s *shortBackend) Close() error { return nil }

func (s *shortBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	res, err := s.inner.Run(ctx, specs)
	if err != nil || len(res) == 0 {
		return res, err
	}
	return res[:len(res)-1], nil
}

func TestMapRejectsMissingShards(t *testing.T) {
	pool := NewPool(1, 1)
	pool.SetBackend(&shortBackend{inner: NewLocalBackend(1)})
	_, err := Map(context.Background(), pool, "short", 4,
		func(ctx context.Context, shard int, seed uint64) (int, error) { return shard, nil })
	if err == nil || !strings.Contains(err.Error(), "no result for shard") {
		t.Fatalf("err = %v, want a missing-shard refusal", err)
	}
}

func TestLocalBackendStats(t *testing.T) {
	pool := NewPool(2, 5)
	mapSquares(t, pool, 10)
	sr, ok := pool.Backend().(StatsReporter)
	if !ok {
		t.Fatal("local backend does not report stats")
	}
	stats := sr.BackendStats()
	if len(stats) != 1 || stats[0].Backend != "local" || stats[0].Cells != 10 || stats[0].Retries != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestCellResultWireRoundTrip pins the wire encoding: values survive
// JSON exactly and context cancellation survives as errors.Is.
func TestCellResultWireRoundTrip(t *testing.T) {
	type payload struct {
		F float64
		U uint64
	}
	in := CellResult{Shard: 3, value: payload{F: 0.1 + 0.2, U: ^uint64(0)}, hasValue: true}
	in.encodeWire()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out CellResult
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := decodeInto(&out, &got); err != nil {
		t.Fatal(err)
	}
	if got != (payload{F: 0.1 + 0.2, U: ^uint64(0)}) {
		t.Errorf("payload round-trip = %+v", got)
	}

	canceled := CellResult{Shard: 1, err: fmt.Errorf("cell: %w", context.Canceled)}
	canceled.encodeWire()
	b, err = json.Marshal(canceled)
	if err != nil {
		t.Fatal(err)
	}
	var out2 CellResult
	if err := json.Unmarshal(b, &out2); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out2.CellErr(), context.Canceled) {
		t.Errorf("cancellation lost in wire round-trip: %v", out2.CellErr())
	}
}
