// Trace-major scheduling: MapTraceMajor groups a scope's cells by the
// trace they replay so one resident trace.Columns pass feeds every
// model of the group (sim.RunColumnsMulti), instead of streaming the
// same trace through cache once per cell. Pure scheduling — per-cell
// results and seeds are bit-identical to the model-major Map path.

package harness

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// SetTraceMajor toggles trace-major scheduling for MapTraceMajor calls
// on this pool (default on). Off, every cell forms its own group — the
// exact model-major execution order — which only changes scheduling,
// never results: the flag exists to pin that equivalence in tests and
// to isolate regressions.
func (p *Pool) SetTraceMajor(on bool) {
	p.mu.Lock()
	p.modelMajor = !on
	p.mu.Unlock()
}

// TraceMajor reports whether trace-major scheduling is enabled.
func (p *Pool) TraceMajor() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.modelMajor
}

// traceMajorWantKey carries a worker-side shard filter in the context:
// when a capture run re-executes a scenario's decomposition for a
// subset of one scope's shards, MapTraceMajor groups only that subset,
// so the worker never replays traces for cells it was not asked for.
// Filtering cannot change results — each cell is a pure function of its
// (scope, shard, seed) address regardless of which group ran it.
type traceMajorWantKey struct{}

type traceMajorWant struct {
	scope string
	want  map[int]bool
}

func withTraceMajorWant(ctx context.Context, scope string, want map[int]bool) context.Context {
	return context.WithValue(ctx, traceMajorWantKey{}, traceMajorWant{scope: scope, want: want})
}

// Locality formats the canonical locality key for the trace artifact a
// cell replays: the workload (or spec content-hash) name plus the
// record count, which together address one tracestore entry and one
// snapstore spill family. Locality-aware backends use the key for
// routing and prefetch only — it never influences results.
func Locality(workload string, records int) string {
	return workload + "@" + strconv.Itoa(records)
}

// SplitLocality parses a Locality key back into its workload name and
// record count. Workload names may themselves contain '@' (none do
// today, but spec hashes are open-ended), so the split is at the last
// separator.
func SplitLocality(key string) (workload string, records int, ok bool) {
	i := strings.LastIndexByte(key, '@')
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(key[i+1:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return key[:i], n, true
}

// cellLocalityKey carries the per-shard locality labeler from
// MapTraceMajor to Map in the context, scoped to one cell space, so
// Map can stamp CellSpec.Locality without changing its signature for
// ungrouped callers.
type cellLocalityKey struct{}

type cellLocality struct {
	scope string
	fn    func(shard int) string
}

func withCellLocality(ctx context.Context, scope string, fn func(shard int) string) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, cellLocalityKey{}, cellLocality{scope: scope, fn: fn})
}

func localityFor(ctx context.Context, scope string) func(int) string {
	if l, ok := ctx.Value(cellLocalityKey{}).(cellLocality); ok && l.scope == scope {
		return l.fn
	}
	return nil
}

// MapTraceMajor runs a grouped cell space: key assigns each shard to a
// group (cells sharing a workload trace), and run executes one whole
// group — shards in ascending order with their ShardSeeds — returning
// one result per shard. Scheduling, journaling, and backends are
// exactly Map's: each cell still has its own spec, seed, and journal
// entry; the only difference is that the first cell of a group to
// execute computes the whole group in one pass (one trace residency, N
// models) and groupmates reuse the memo.
//
// locality labels each shard's cell spec with the warm-artifact key the
// group replays (see Locality); nil leaves specs unlabeled. The label
// feeds locality-aware routing and prefetch in wire backends and is
// stamped on the model-major fallback path too — pure metadata either
// way.
//
// run must be a pure function of the (shards, seeds) it is given, with
// results independent of how shards are grouped — sim.RunColumnsMulti's
// contract. Under that contract the output is bit-identical to Map over
// the same per-cell work, with the pool's TraceMajor flag on or off, on
// any backend, at any worker count.
func MapTraceMajor[T any](ctx context.Context, p *Pool, scope string, n int,
	key func(shard int) int,
	locality func(shard int) string,
	run func(ctx context.Context, shards []int, seeds []uint64) ([]T, error)) ([]T, error) {
	if p == nil {
		p = Default()
	}
	ctx = withCellLocality(ctx, scope, locality)
	single := func(ctx context.Context, shard int, seed uint64) (T, error) {
		var zero T
		res, err := run(ctx, []int{shard}, []uint64{seed})
		if err != nil {
			return zero, err
		}
		if len(res) != 1 {
			return zero, fmt.Errorf("%s: group run returned %d results for 1 shard", scope, len(res))
		}
		return res[0], nil
	}
	if !p.TraceMajor() {
		return Map(ctx, p, scope, n, single)
	}

	// A worker capture run executes only a subset of the scope's shards;
	// group just those, so no trace is replayed for unrequested cells.
	member := func(int) bool { return true }
	if f, ok := ctx.Value(traceMajorWantKey{}).(traceMajorWant); ok && f.scope == scope {
		member = func(shard int) bool { return f.want[shard] }
	}
	type group struct {
		shards []int
		seeds  []uint64
		index  map[int]int // shard → position in shards/out
		once   sync.Once
		out    []T
		err    error
	}
	groups := map[int]*group{}
	for shard := 0; shard < n; shard++ {
		if !member(shard) {
			continue
		}
		g := groups[key(shard)]
		if g == nil {
			g = &group{index: map[int]int{}}
			groups[key(shard)] = g
		}
		g.index[shard] = len(g.shards)
		g.shards = append(g.shards, shard)
		g.seeds = append(g.seeds, ShardSeed(p.rootSeed, scope, shard))
	}

	return Map(ctx, p, scope, n, func(ctx context.Context, shard int, seed uint64) (T, error) {
		var zero T
		g := groups[key(shard)]
		if g == nil {
			// A shard outside the want filter reached execution anyway —
			// grouping assumptions are broken; fail loudly rather than
			// silently recompute.
			return zero, fmt.Errorf("%s shard %d: not in any trace-major group", scope, shard)
		}
		g.once.Do(func() {
			g.out, g.err = run(ctx, g.shards, g.seeds)
			if g.err == nil && len(g.out) != len(g.shards) {
				g.err = fmt.Errorf("%s: group run returned %d results for %d shards", scope, len(g.out), len(g.shards))
			}
		})
		if g.err != nil {
			return zero, g.err
		}
		return g.out[g.index[shard]], nil
	})
}
