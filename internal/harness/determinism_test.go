package harness_test

// Cross-package determinism tests: the acceptance bar for the harness is
// that real experiment scenarios produce byte-identical JSON at any
// worker count under one root seed. These live in an external test
// package so they can drive the experiments scenarios through the public
// API (experiments imports harness, so the reverse import must go through
// a _test package).

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"stbpu/internal/experiments"
	"stbpu/internal/harness"
	"stbpu/internal/tracestore"
)

// quickParams is a reduced QuickScale sized for repeated runs.
func quickParams() harness.Params {
	return harness.Params{Records: 20_000, MaxWorkloads: 4, MaxPairs: 2}
}

func TestFig3Fig4ByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const rootSeed = 0xd15ea5e
	p := quickParams()
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}

	marshal := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	type snapshot struct{ fig3, fig4 string }
	run := func(workers int) snapshot {
		pool := harness.NewPool(workers, rootSeed)
		f3, err := experiments.RunFig3Ctx(context.Background(), p, pool)
		if err != nil {
			t.Fatalf("workers=%d fig3: %v", workers, err)
		}
		f4, err := experiments.RunFig4Ctx(context.Background(), p, pool)
		if err != nil {
			t.Fatalf("workers=%d fig4: %v", workers, err)
		}
		return snapshot{marshal(f3), marshal(f4)}
	}

	want := run(counts[0])
	for _, w := range counts[1:] {
		got := run(w)
		if got.fig3 != want.fig3 {
			t.Errorf("Fig3Result JSON differs between workers=1 and workers=%d", w)
		}
		if got.fig4 != want.fig4 {
			t.Errorf("Fig4Result JSON differs between workers=1 and workers=%d", w)
		}
	}

	// A different root seed must actually change STBPU's stochastic
	// results — otherwise the plumbing above proves nothing.
	other := harness.NewPool(1, rootSeed+1)
	f3, err := experiments.RunFig3Ctx(context.Background(), quickParams(), other)
	if err != nil {
		t.Fatal(err)
	}
	if marshal(f3) == want.fig3 {
		t.Error("root seed does not influence Fig3 results")
	}
}

// TestTraceStoreSharedAcrossScenarioRuns pins the cross-run property the
// store was extracted for: a second scenario run on the same pool reuses
// every resident trace instead of regenerating (the per-run caches this
// replaced generated once per scenario run).
func TestTraceStoreSharedAcrossScenarioRuns(t *testing.T) {
	pool := harness.NewPool(2, 7)
	p := quickParams()
	if _, err := experiments.RunFig3Ctx(context.Background(), p, pool); err != nil {
		t.Fatal(err)
	}
	// Under trace-major scheduling the first run consults the store
	// exactly once per workload group, so it generates without hitting.
	first := pool.Traces().Stats()
	if first.Generations == 0 {
		t.Fatalf("first run stats implausible: %+v", first)
	}
	if _, err := experiments.RunFig3Ctx(context.Background(), p, pool); err != nil {
		t.Fatal(err)
	}
	second := pool.Traces().Stats()
	if second.Generations != first.Generations {
		t.Errorf("second run regenerated traces: generations %d -> %d",
			first.Generations, second.Generations)
	}
	if second.Hits <= first.Hits {
		t.Errorf("second run did not hit the shared store: hits %d -> %d",
			first.Hits, second.Hits)
	}
}

// TestResultsIdenticalUnderTinyTraceStore is the determinism gate for
// eviction: a store too small to hold anything forces constant
// regeneration, and the results must still be byte-identical.
func TestResultsIdenticalUnderTinyTraceStore(t *testing.T) {
	run := func(store *tracestore.Store) string {
		pool := harness.NewPool(3, 0xd15ea5e)
		if store != nil {
			pool.SetTraceStore(store)
		}
		f3, err := experiments.RunFig3Ctx(context.Background(), quickParams(), pool)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(f3)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	want := run(nil)
	tiny := tracestore.New(1, nil)
	if got := run(tiny); got != want {
		t.Error("results differ between default and always-evicting trace stores")
	}
	if st := tiny.Stats(); st.Evictions == 0 {
		t.Errorf("tiny store never evicted: %+v", st)
	}
}

func TestScenarioRegistryCoversAllExperiments(t *testing.T) {
	want := []string{
		"covert", "defense-accuracy", "defense-matrix", "fig3", "fig4",
		"fig5", "fig6", "gamma", "ittage", "tablei", "thresholds", "warmup",
	}
	for _, name := range want {
		if _, ok := harness.Get(name); !ok {
			t.Errorf("scenario %q not registered", name)
		}
	}
}

func TestRunAllScenarioSubset(t *testing.T) {
	pool := harness.NewPool(2, 99)
	reports, err := harness.RunAll(context.Background(), pool, harness.Options{
		Filters: []string{"thresholds", "gamma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	for _, rep := range reports {
		if _, ok := rep.Result.(harness.Renderer); !ok {
			t.Errorf("scenario %s result %T does not implement Renderer", rep.Scenario, rep.Result)
		}
	}
}

func TestRunAllHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := harness.RunAll(ctx, harness.NewPool(2, 1), harness.Options{
		Filters: []string{"fig3"},
		Params:  quickParams(),
	})
	if err == nil {
		t.Fatal("RunAll ignored a canceled context")
	}
}

// BenchmarkFig3Fig4 measures the QuickScale Fig3+Fig4 run at several
// worker counts; on a multi-core host the 4-worker run should be ≥2×
// faster than serial (the cell spaces are 30 and 24 cells wide).
func BenchmarkFig3Fig4(b *testing.B) {
	p := harness.Params{Records: 40_000, MaxWorkloads: 6}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool := harness.NewPool(workers, harness.DefaultRootSeed)
				if _, err := experiments.RunFig3Ctx(context.Background(), p, pool); err != nil {
					b.Fatal(err)
				}
				if _, err := experiments.RunFig4Ctx(context.Background(), p, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
