package harness

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// journalCellRuns counts real executions of the _journal scenario's
// cells, so tests can assert which cells a resumed run skipped.
var journalCellRuns atomic.Int64

const journalScenarioCells = 8

func init() {
	Register(Scenario{
		Name:        "_journal",
		Description: "journal test scenario",
		Defaults:    Params{Trials: journalScenarioCells},
		Run: func(ctx context.Context, p Params, pool *Pool) (any, error) {
			return Map(ctx, pool, "_journal", p.Trials,
				func(ctx context.Context, shard int, seed uint64) (float64, error) {
					journalCellRuns.Add(1)
					return float64(seed%997) / 7, nil
				})
		},
	})
}

func runJournalScenario(t *testing.T, sink Sink) ([]Report, *Pool) {
	t.Helper()
	pool := NewPool(2, 11)
	if sink != nil {
		pool.SetSink(sink)
		defer pool.SetSink(nil)
	}
	reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_journal"}})
	if err != nil {
		t.Fatal(err)
	}
	return reports, pool
}

func TestJournalStreamsEveryCell(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	runJournalScenario(t, j)
	if j.Appended() != journalScenarioCells {
		t.Errorf("appended %d cells, want %d", j.Appended(), journalScenarioCells)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != journalScenarioCells {
		t.Fatalf("journal holds %d entries, want %d", len(entries), journalScenarioCells)
	}
	e := entries[0]
	if e.Scenario != "_journal" || e.Scope != "_journal" || e.RootSeed != 11 || e.Params.Trials != journalScenarioCells {
		t.Errorf("entry address wrong: %+v", e)
	}
	if len(e.Value) == 0 || e.Backend != "local" {
		t.Errorf("entry payload wrong: %+v", e)
	}
}

// TestJournalResumeSkipsCompletedCells is the resume acceptance gate: a
// journal holding a prefix of the run's cells must keep those cells
// from re-executing while the final results and cell accounting stay
// identical to an uninterrupted run.
func TestJournalResumeSkipsCompletedCells(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	j, err := CreateJournal(full)
	if err != nil {
		t.Fatal(err)
	}
	wantReports, _ := runJournalScenario(t, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a run killed partway: keep only the first half of the
	// journal's lines.
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(b), "\n"), "\n")
	partialPath := filepath.Join(dir, "partial.jsonl")
	partial := strings.Join(lines[:journalScenarioCells/2], "")
	if err := os.WriteFile(partialPath, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}

	rj, err := ResumeJournal(partialPath)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Loaded() != journalScenarioCells/2 {
		t.Fatalf("resumed journal loaded %d cells, want %d", rj.Loaded(), journalScenarioCells/2)
	}
	before := journalCellRuns.Load()
	gotReports, pool := runJournalScenario(t, rj)
	executed := journalCellRuns.Load() - before
	if want := int64(journalScenarioCells / 2); executed != want {
		t.Errorf("resumed run executed %d cells, want %d", executed, want)
	}
	if pool.Cells() != journalScenarioCells {
		t.Errorf("resumed run counted %d cells, want %d (restored cells must count)", pool.Cells(), journalScenarioCells)
	}
	if !reflect.DeepEqual(gotReports[0].Result, wantReports[0].Result) {
		t.Errorf("resumed result differs:\n%v\n%v", gotReports[0].Result, wantReports[0].Result)
	}
	if gotReports[0].Cells != wantReports[0].Cells {
		t.Errorf("resumed Report.Cells = %d, want %d", gotReports[0].Cells, wantReports[0].Cells)
	}
	if err := rj.Close(); err != nil {
		t.Fatal(err)
	}
	// The resumed journal must now be complete: original prefix plus the
	// freshly executed cells, no duplicates.
	entries, err := ReadJournal(partialPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != journalScenarioCells {
		t.Errorf("resumed journal holds %d entries, want %d", len(entries), journalScenarioCells)
	}
}

// TestJournalObserverSeesRestoredCells pins the replay contract: a
// resumed run streams journal-restored cells to the observer with
// Backend "journal", so progress accounting covers the whole space.
func TestJournalObserverSeesRestoredCells(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	runJournalScenario(t, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rj, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rj.Close()
	pool := NewPool(2, 11)
	pool.SetSink(rj)
	var restored atomic.Int64
	pool.SetObserver(func(c Cell) {
		if c.Backend == "journal" {
			restored.Add(1)
		}
	})
	if _, err := RunAll(context.Background(), pool, Options{Filters: []string{"_journal"}}); err != nil {
		t.Fatal(err)
	}
	if restored.Load() != journalScenarioCells {
		t.Errorf("observer saw %d restored cells, want %d", restored.Load(), journalScenarioCells)
	}
}

// TestJournalToleratesTruncatedTail is the crash-tail contract: a run
// killed mid-write leaves a partial final line, which Resume/Read drop.
func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	runJournalScenario(t, j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"scenario":"_journal","scope":"_jou`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	entries, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("truncated tail not tolerated: %v", err)
	}
	if len(entries) != journalScenarioCells {
		t.Errorf("entries = %d, want %d", len(entries), journalScenarioCells)
	}
	rj, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Loaded() != journalScenarioCells {
		t.Errorf("resume loaded %d, want %d", rj.Loaded(), journalScenarioCells)
	}
	// The resume must have truncated the partial tail before appending:
	// a cell written now starts on its own line, and the whole file
	// stays parseable (the bug this pins: appending after a dropped
	// tail welded the next entry onto garbage mid-file, poisoning every
	// later read).
	rj.CellDone(Cell{Backend: "local"},
		CellSpec{Scenario: "_journal", Scope: "extra", Shard: 0, RootSeed: 11},
		CellResult{Shard: 0, Value: json.RawMessage("42")})
	if err := rj.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err = ReadJournal(path)
	if err != nil {
		t.Fatalf("journal unreadable after resume over a truncated tail: %v", err)
	}
	if len(entries) != journalScenarioCells+1 {
		t.Errorf("entries after post-resume append = %d, want %d", len(entries), journalScenarioCells+1)
	}
	if last := entries[len(entries)-1]; last.Scope != "extra" || string(last.Value) != "42" {
		t.Errorf("post-resume entry corrupted: %+v", last)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	good, err := json.Marshal(JournalEntry{Scenario: "s", Scope: "s", Value: json.RawMessage("1")})
	if err != nil {
		t.Fatal(err)
	}
	content := "not json at all\n" + string(good) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil {
		t.Error("mid-file corruption was silently accepted")
	}
}

func TestJournalSkipsErrorsAndAnonymousCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := CellSpec{Scenario: "s", Scope: "sc", Shard: 0, RootSeed: 1}
	j.CellDone(Cell{Err: errors.New("boom")}, spec, CellResult{Shard: 0, Err: "boom"})
	j.CellDone(Cell{}, CellSpec{Scope: "anon", Shard: 1}, CellResult{Shard: 1, Value: json.RawMessage("2")})
	if j.Appended() != 0 {
		t.Errorf("errored/anonymous cells were journaled: %d", j.Appended())
	}
	if j.Err() != nil {
		t.Errorf("a failed cell must not poison the journal: %v", j.Err())
	}
	j.CellDone(Cell{Backend: "local"}, spec, CellResult{Shard: 0, Value: json.RawMessage("1")})
	j.CellDone(Cell{Backend: "local"}, spec, CellResult{Shard: 0, Value: json.RawMessage("1")})
	if j.Appended() != 1 {
		t.Errorf("duplicate cell not deduplicated: %d", j.Appended())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalSurfacesUnencodableCells: a cell that *succeeded* but
// could not be wire-encoded (NaN in its value) leaves a hole a resume
// would silently re-execute — the journal must fail loudly at Close.
func TestJournalSurfacesUnencodableCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	res := CellResult{Shard: 0, value: math.NaN(), hasValue: true}
	res.encodeWire() // what Pool.complete does; NaN makes this fail
	j.CellDone(Cell{Backend: "local"}, CellSpec{Scenario: "s", Scope: "sc"}, res)
	if err := j.Close(); err == nil || !strings.Contains(err.Error(), "not journalable") {
		t.Errorf("unencodable successful cell not surfaced: %v", err)
	}
}

// TestJournalKeyedByParams pins the address: a journal recorded under
// one parameter set must not satisfy lookups for another. Lookups only
// answer for resume-loaded cells (freshly appended cells index
// presence alone, keeping million-cell runs from retaining every value
// in memory), so the check goes through a close/resume cycle.
func TestJournalKeyedByParams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := CellSpec{Scenario: "s", Scope: "sc", Shard: 0, RootSeed: 1, Params: Params{Records: 100}}
	j.CellDone(Cell{}, spec, CellResult{Shard: 0, Value: json.RawMessage("1")})
	if _, ok := j.LookupCell(spec); ok {
		t.Error("freshly appended cell answered a lookup (values must not be retained in memory)")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rj, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rj.Close()
	if r, ok := rj.LookupCell(spec); !ok || string(r.Value) != "1" {
		t.Fatalf("resume-loaded cell not found: %+v, %v", r, ok)
	}
	// A hit releases the stored value (splice-once memory contract); the
	// key stays indexed so re-appends still dedup.
	if _, ok := rj.LookupCell(spec); ok {
		t.Error("second lookup of a spliced cell still held its value")
	}
	rj.CellDone(Cell{}, spec, CellResult{Shard: 0, Value: json.RawMessage("1")})
	if rj.Appended() != 0 {
		t.Error("spliced cell was re-appended after its value was released")
	}
	other := spec
	other.Params.Records = 200
	if _, ok := rj.LookupCell(other); ok {
		t.Error("lookup matched across different params")
	}
	otherSeed := spec
	otherSeed.RootSeed = 2
	if _, ok := rj.LookupCell(otherSeed); ok {
		t.Error("lookup matched across different root seeds")
	}
}

// TestJournalResumeMissingFileIsEmpty pins the degenerate resume: no
// journal yet means nothing to skip, not an error.
func TestJournalResumeMissingFileIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.jsonl")
	j, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Loaded() != 0 {
		t.Errorf("loaded %d from a missing file", j.Loaded())
	}
	runJournalScenario(t, j)
	if j.Appended() != journalScenarioCells {
		t.Errorf("appended %d, want %d", j.Appended(), journalScenarioCells)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCloseSurfacesWriteFailure: a journal whose file stopped
// accepting writes must fail the run at Close, not lose cells silently.
func TestJournalCloseSurfacesWriteFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.f.Close() // simulate the descriptor dying under the journal
	j.CellDone(Cell{}, CellSpec{Scenario: "s", Scope: "sc"}, CellResult{Value: json.RawMessage("1")})
	if j.Err() == nil {
		t.Fatal("write failure not recorded")
	}
	// After a sticky failure no further entries may be written or
	// indexed — a later successful write after a partial one would weld
	// garbage mid-file and make the whole journal unresumable.
	j.CellDone(Cell{}, CellSpec{Scenario: "s", Scope: "sc", Shard: 1}, CellResult{Shard: 1, Value: json.RawMessage("2")})
	if j.Appended() != 0 {
		t.Errorf("journal kept appending after a write failure: %d", j.Appended())
	}
	j.f = nil // already closed above; Close must still report the write error
	if err := j.Close(); err == nil {
		t.Error("Close swallowed the write failure")
	}
}

// TestJournalExecBackendStreams: cells executed by subprocess workers
// must reach the coordinator's journal exactly like local cells.
func TestJournalExecBackendStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2, 11)
	pool.SetBackend(newTestExecBackend(t, 1, "serve"))
	pool.SetSink(j)
	reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_journal"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != journalScenarioCells {
		t.Fatalf("exec run journaled %d cells, want %d", len(entries), journalScenarioCells)
	}
	for _, e := range entries {
		if e.Backend != "exec" {
			t.Errorf("entry backend = %q, want exec", e.Backend)
		}
	}
	// A fresh pool resuming from the exec run's journal must reproduce
	// the same result without executing anything.
	rj, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rj.Close()
	before := journalCellRuns.Load()
	resumed, _ := runJournalScenario(t, rj)
	if executed := journalCellRuns.Load() - before; executed != 0 {
		t.Errorf("resume after a complete exec run executed %d cells", executed)
	}
	a, _ := json.Marshal(reports[0].Result)
	b, _ := json.Marshal(resumed[0].Result)
	if string(a) != string(b) {
		t.Errorf("journal-restored result differs from exec run:\n%s\n%s", a, b)
	}
}
