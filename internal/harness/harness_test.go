package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, scope := range []string{"fig3", "fig4", "covert"} {
		for shard := 0; shard < 1000; shard++ {
			s := ShardSeed(1, scope, shard)
			if s != ShardSeed(1, scope, shard) {
				t.Fatalf("ShardSeed(%q, %d) not stable", scope, shard)
			}
			key := fmt.Sprintf("%s/%d", scope, shard)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %#x", prev, key, s)
			}
			seen[s] = key
		}
	}
	if ShardSeed(1, "fig3", 0) == ShardSeed(2, "fig3", 0) {
		t.Error("root seed does not feed into shard seeds")
	}
}

func TestParamsMerged(t *testing.T) {
	def := Params{Records: 100, Trials: 4, R: 0.05, Sweep: []float64{1, 2}, Workload: "w"}
	got := Params{Records: 7}.Merged(def)
	want := Params{Records: 7, Trials: 4, R: 0.05, Sweep: []float64{1, 2}, Workload: "w"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merged = %+v, want %+v", got, want)
	}
	if full := def.Merged(Params{Records: 9}); !reflect.DeepEqual(full, def) {
		t.Errorf("set fields overwritten: %+v", full)
	}
}

// TestParamsMergedZeroValueEdgeCases pins the zero-means-default
// contract field by field: the knobs whose zero value is a *meaningful*
// setting (R=0, an empty Sweep) cannot be distinguished from "unset",
// so Merged always treats them as unset — scenarios that need a literal
// zero must encode it differently.
func TestParamsMergedZeroValueEdgeCases(t *testing.T) {
	def := Params{R: 0.05, Sweep: []float64{1, 2}, Bits: 512, Budget: 64}

	// R=0 reads as unset and takes the default — there is no way to ask
	// for a literal r of zero through Params.
	if got := (Params{}).Merged(def); got.R != 0.05 {
		t.Errorf("R=0 did not take the default: %+v", got)
	}
	// A non-nil but empty Sweep also reads as unset (len, not nil, is
	// the test), matching how flag parsing produces empty slices.
	if got := (Params{Sweep: []float64{}}).Merged(def); !reflect.DeepEqual(got.Sweep, []float64{1, 2}) {
		t.Errorf("empty Sweep did not take the default: %+v", got.Sweep)
	}
	// A one-element override replaces the default wholesale — sweeps
	// never merge element-wise.
	if got := (Params{Sweep: []float64{9}}).Merged(def); !reflect.DeepEqual(got.Sweep, []float64{9}) {
		t.Errorf("set Sweep was not kept verbatim: %+v", got.Sweep)
	}
	// Negative and tiny values are "set": they survive the merge even
	// when a default exists.
	if got := (Params{R: 1e-9, Budget: -1}).Merged(def); got.R != 1e-9 || got.Budget != -1 {
		t.Errorf("non-zero overrides lost: %+v", got)
	}

	// Merging zero into zero stays zero, and merging a full set into an
	// empty default is the identity.
	if got := (Params{}).Merged(Params{}); !reflect.DeepEqual(got, Params{}) {
		t.Errorf("zero-zero merge invented values: %+v", got)
	}
	full := Params{Records: 1, MaxWorkloads: 2, MaxPairs: 3, Trials: 4, Budget: 5, Bits: 6, R: 7, Sweep: []float64{8}, Workload: "nine"}
	if got := full.Merged(Params{}); !reflect.DeepEqual(got, full) {
		t.Errorf("identity merge mutated params: %+v", got)
	}
	// Merged is layerable: CLI → quick-scale → scenario defaults, as
	// stbpu-suite chains it. The first set value along the chain wins.
	layered := (Params{Records: 1}).Merged(Params{Records: 2, Trials: 3}).Merged(Params{Records: 4, Trials: 5, Bits: 6})
	if want := (Params{Records: 1, Trials: 3, Bits: 6}); !reflect.DeepEqual(layered, want) {
		t.Errorf("layered merge = %+v, want %+v", layered, want)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	const n = 100
	run := func(workers int) []uint64 {
		p := NewPool(workers, 42)
		out, err := Map(context.Background(), p, "order", n,
			func(ctx context.Context, shard int, seed uint64) (uint64, error) {
				return seed ^ uint64(shard), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 16} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d produced different results than serial", w)
		}
	}
}

func TestMapReturnsLowestShardError(t *testing.T) {
	p := NewPool(4, 1)
	sentinel := errors.New("boom")
	_, err := Map(context.Background(), p, "err", 32,
		func(ctx context.Context, shard int, seed uint64) (int, error) {
			if shard == 3 || shard == 20 {
				return 0, fmt.Errorf("shard %d: %w", shard, sentinel)
			}
			return shard, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	// Shard 3 always completes (every worker count covers it before 20
	// can finish), so the deterministic lowest-index error is reported.
	if want := "err shard 3:"; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Errorf("err = %q, want prefix %q", err, want)
	}
}

func TestMapRootCauseErrorNotMaskedByCollateralCancellation(t *testing.T) {
	// Shard 0 only aborts because shard 1's real failure cancels the
	// inner context; Map must report shard 1's error, not shard 0's
	// collateral context.Canceled.
	p := NewPool(2, 1)
	sentinel := errors.New("root cause")
	_, err := Map(context.Background(), p, "mask", 2,
		func(ctx context.Context, shard int, seed uint64) (int, error) {
			if shard == 0 {
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return 0, sentinel
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the root-cause error", err)
	}
}

func TestMapCancellationStopsWorkersPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers, 1)
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		done := make(chan error, 1)
		go func() {
			_, err := Map(ctx, p, "cancel", 1000,
				func(ctx context.Context, shard int, seed uint64) (int, error) {
					started.Add(1)
					<-ctx.Done() // a cell that only finishes under cancellation
					return 0, ctx.Err()
				})
			done <- err
		}()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: Map did not return after cancel", workers)
		}
		if int(started.Load()) > workers {
			t.Errorf("workers=%d: %d cells started after cancel", workers, started.Load())
		}
	}
}

func TestMapObserverStreamsEveryCell(t *testing.T) {
	p := NewPool(4, 9)
	var cells atomic.Int64
	p.SetObserver(func(c Cell) {
		if c.Scope != "obs" {
			t.Errorf("cell scope = %q", c.Scope)
		}
		cells.Add(1)
	})
	if _, err := Map(context.Background(), p, "obs", 50,
		func(ctx context.Context, shard int, seed uint64) (int, error) { return shard, nil }); err != nil {
		t.Fatal(err)
	}
	if cells.Load() != 50 {
		t.Errorf("observer saw %d cells, want 50", cells.Load())
	}
	if p.Cells() != 50 {
		t.Errorf("pool counted %d cells, want 50", p.Cells())
	}
}

func TestMapZeroCells(t *testing.T) {
	out, err := Map(context.Background(), NewPool(4, 1), "empty", 0,
		func(ctx context.Context, shard int, seed uint64) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	// Use unique names so this test composes with the experiments
	// package's init registrations in external test binaries.
	Register(Scenario{
		Name:        "_test-a",
		Description: "registry test scenario",
		Defaults:    Params{Trials: 3},
		Run: func(ctx context.Context, p Params, pool *Pool) (any, error) {
			return Map(ctx, pool, "_test-a", p.Trials,
				func(ctx context.Context, shard int, seed uint64) (int, error) {
					return shard, nil
				})
		},
	})
	Register(Scenario{
		Name: "_test-b",
		Run: func(ctx context.Context, p Params, pool *Pool) (any, error) {
			return "b", nil
		},
	})

	if _, ok := Get("_test-a"); !ok {
		t.Fatal("Get missed a registered scenario")
	}
	scens, err := Match([]string{"_test-*"})
	if err != nil || len(scens) != 2 {
		t.Fatalf("Match = %d scenarios, err %v", len(scens), err)
	}
	if _, err := Match([]string{"no-such-scenario"}); err == nil {
		t.Error("Match accepted an unmatched filter")
	}

	pool := NewPool(2, 7)
	reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_test-a"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	rep := reports[0]
	if rep.Scenario != "_test-a" || rep.Seed != 7 || rep.Workers != 2 {
		t.Errorf("report metadata wrong: %+v", rep)
	}
	if rep.Params.Trials != 3 {
		t.Errorf("defaults not merged: %+v", rep.Params)
	}
	if rep.Cells != 3 {
		t.Errorf("cells = %d, want 3", rep.Cells)
	}
	if rep.ElapsedMS != 0 {
		t.Errorf("timing recorded without Timing option: %d", rep.ElapsedMS)
	}
	got, ok := rep.Result.([]int)
	if !ok || !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("result = %#v", rep.Result)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Scenario{Name: "_dup", Run: func(ctx context.Context, p Params, pool *Pool) (any, error) { return nil, nil }})
	Register(Scenario{Name: "_dup", Run: func(ctx context.Context, p Params, pool *Pool) (any, error) { return nil, nil }})
}
