// Package harness is the scenario registry and distributed execution
// engine behind every experiment driver in this repository — the top
// layer of the architecture described in docs/ARCHITECTURE.md
// (predictors → sim/tracestore → harness → cmd and examples).
//
// An experiment is registered once as a named, parameterized Scenario;
// its Run decomposes the experiment into a dense (model × workload ×
// trial) cell space via Map, which schedules the cells through the
// pool's Backend and reassembles results in shard order.
//
// # Determinism contract
//
// Every stochastic input of a cell derives from ShardSeed(rootSeed,
// scope, shard) — a pure function of the pool's root seed, the
// scenario-local scope name, and the cell's dense index. Scheduling can
// reorder *execution* but never *results*: Map writes each cell's value
// into its own slot and aggregation walks slots in index order. A run
// is therefore bit-identical at any worker count and on any backend.
//
// # Backends
//
// Four Backend implementations ship with the package:
//
//   - LocalBackend: the in-process goroutine pool (the default).
//   - ExecBackend: subprocess workers (`stbpu-suite -worker`) fed
//     CellSpec batches as length-prefixed JSON frames over stdio — the
//     building block for multi-machine runs via ssh or a job runner.
//   - RemoteBackend: the same frames over TCP to an elastic fleet —
//     workers (`stbpu-suite -worker -connect host:port`) join and leave
//     at will; the coordinator heartbeats them, requeues chunks from
//     dead workers, and speculatively re-executes stragglers'
//     cells (first result wins, duplicates discarded by address).
//   - MultiBackend: weighted round-robin across child backends with
//     requeue on transport failure; batch failures marked Permanent
//     (deterministic scenario bugs) propagate instead of retrying.
//
// Cells are addressable across processes as (scenario, params, scope,
// shard, rootSeed), so a worker holding the same binary re-derives any
// cell bit-identically; see docs/ARCHITECTURE.md "How a cell flows
// through a backend".
//
// # Run journal
//
// The same cell address keys the run journal (journal.go): a Sink
// installed with Pool.SetSink receives every completed cell with its
// wire-encoded result, and a Journal sink streams them to a JSONL file
// (schema: docs/SUITE_JSON.md). Resuming from a journal makes Map skip
// already-completed cells and splice their stored values into its
// output — a crashed run restarted with `stbpu-suite -resume` produces
// a byte-identical final document without redoing finished work.
package harness
