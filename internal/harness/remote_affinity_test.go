package harness

// Tests for the locality-aware scheduler and the negotiated binary wire
// codec. The standing contract stays what it always was — bytes
// identical to the in-process run — with affinity routing, mixed-codec
// fleets, and the preferred worker dying mid-group layered on top.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// startInProcWorkerOpts is startInProcWorker with explicit worker
// options, for pinning a worker's frame codec.
func startInProcWorkerOpts(t *testing.T, addr string, opts WorkerOptions) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ServeRemoteWorker(ctx, addr, opts)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// runGroup runs the locality-grouped trace scenario, the workload shape
// affinity scheduling exists for.
func runGroup(t *testing.T, pool *Pool) []Report {
	t.Helper()
	reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-group"}})
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// waitJoins polls until the fleet has admitted n workers.
func waitJoins(t *testing.T, b *RemoteBackend, n uint64) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for fleetStats(t, b).Joins < n {
		select {
		case <-deadline:
			t.Fatalf("joins = %d, want %d", fleetStats(t, b).Joins, n)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestRemoteMixedCodecFleet: one worker negotiates the binary codec,
// the other is pinned to JSON, and the run must not care — bytes
// identical to local, with both codecs visibly carrying frames.
func TestRemoteMixedCodecFleet(t *testing.T) {
	local := runGroup(t, NewPool(2, 9090))

	b := &RemoteBackend{}
	addr := startRemote(t, b)
	startInProcWorker(t, addr) // negotiates binary
	startInProcWorkerOpts(t, addr, WorkerOptions{Workers: 1, Wire: "json"})
	waitJoins(t, b, 2)

	pool := NewPool(2, 9090)
	pool.SetBackend(b)
	remote := runGroup(t, pool)
	if !bytes.Equal(reportBytes(t, local), reportBytes(t, remote)) {
		t.Error("mixed-codec fleet results diverge from local")
	}
	st := fleetStats(t, b)
	if st.WireJSONBytes == 0 || st.WireBinaryBytes == 0 {
		t.Errorf("mixed fleet should count bytes on both codecs: json=%d binary=%d",
			st.WireJSONBytes, st.WireBinaryBytes)
	}
}

// TestRemoteAffinityPreferredWorkerKilledMidGroup is the chaos gate for
// the scheduler: the sole worker — by construction the affinity-
// preferred home of every locality key — takes a chunk of the grouped
// scenario and is SIGKILLed holding it. Its keys must migrate to the
// replacement worker with the final bytes identical to local.
func TestRemoteAffinityPreferredWorkerKilledMidGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	local := runGroup(t, NewPool(2, 6161))

	b := &RemoteBackend{MinStragglerAge: time.Minute}
	addr := startRemote(t, b)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerEnvVar+"=remote-wedge", remoteAddrEnvVar+"="+addr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	pool := NewPool(2, 6161)
	pool.SetBackend(b)
	type outcome struct {
		reports []Report
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-group"}})
		done <- outcome{reports, err}
	}()

	marker, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil || !strings.HasPrefix(marker, "WEDGED") {
		t.Fatalf("wedge worker never reported a chunk: %q, %v", marker, err)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	startInProcWorker(t, addr)

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !bytes.Equal(reportBytes(t, local), reportBytes(t, o.reports)) {
			t.Error("killed-preferred-worker results diverge from local")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run hung after the preferred worker was killed")
	}
	st := fleetStats(t, b)
	if st.Leaves == 0 || st.Retries == 0 {
		t.Errorf("kill left no trace in stats: leaves=%d retries=%d", st.Leaves, st.Retries)
	}
}

// placementRun drives a fabricated locality-keyed batch through two
// scripted workers and reports how many distinct (worker, key)
// placements occurred — the white-box proxy for redundant artifact
// loads — plus the fleet's affinity-hit count.
func placementRun(t *testing.T, affinity bool) (placements int, hits uint64) {
	t.Helper()
	b := &RemoteBackend{Affinity: &affinity, MinStragglerAge: time.Minute}
	addr := startRemote(t, b)

	var mu sync.Mutex
	seen := map[string]struct{}{}
	serve := func(name string) {
		conn, _ := dialScriptedWorker(t, addr, name)
		go func() {
			for {
				var work remoteWork
				if readFrame(conn, &work) != nil {
					return
				}
				if len(work.Cells) > 0 {
					mu.Lock()
					seen[name+"|"+work.Cells[0].Locality] = struct{}{}
					mu.Unlock()
				}
				// A stand-in for compute: long enough that the other worker
				// stays busy too, so dispatch genuinely alternates.
				time.Sleep(25 * time.Millisecond)
				results := make([]CellResult, len(work.Cells))
				for i, c := range work.Cells {
					results[i] = CellResult{Shard: c.Shard, Value: json.RawMessage(strconv.Itoa(c.Shard))}
				}
				if writeFrame(conn, remoteReply{Type: "results", Seq: work.Seq, Results: results}) != nil {
					return
				}
			}
		}()
	}
	// Join sequentially so the fleet names are deterministic per run.
	serve("alpha")
	waitJoins(t, b, 1)
	serve("beta")
	waitJoins(t, b, 2)

	// Pick four keys whose rendezvous preference splits 2/2 across the
	// two admitted workers, using their actual fleet names.
	st := fleetStats(t, b)
	if len(st.Workers) != 2 {
		t.Fatalf("fleet has %d workers, want 2", len(st.Workers))
	}
	nameA, nameB := st.Workers[0].Worker, st.Workers[1].Worker
	var forA, forB []string
	for i := 0; len(forA) < 2 || len(forB) < 2; i++ {
		key := Locality(fmt.Sprintf("wl%03d", i), 1000)
		if fnv1a(key+"\x00"+nameA) > fnv1a(key+"\x00"+nameB) {
			forA = append(forA, key)
		} else {
			forB = append(forB, key)
		}
	}
	keys := []string{forA[0], forB[0], forA[1], forB[1]}

	// 4 keys x 8 shards with 2 live workers chunks into 8 single-key
	// chunks, two per key: enough placements for routing policy to show.
	var specs []CellSpec
	for k, key := range keys {
		for j := 0; j < 8; j++ {
			specs = append(specs, CellSpec{Scope: "placement", Shard: k*8 + j, Locality: key})
		}
	}
	if _, err := b.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	for _, w := range fleetStats(t, b).Workers {
		hits += w.AffinityHits
	}
	mu.Lock()
	defer mu.Unlock()
	return len(seen), hits
}

// TestRemoteAffinityConsolidatesPlacement: with affinity on, each
// locality key should settle on one worker (its artifacts load once);
// round-robin dispatch scatters the same keys across the fleet.
func TestRemoteAffinityConsolidatesPlacement(t *testing.T) {
	onPlacements, onHits := placementRun(t, true)
	offPlacements, _ := placementRun(t, false)
	if onHits == 0 {
		t.Error("affinity scheduling recorded no hits")
	}
	if onPlacements >= offPlacements {
		t.Errorf("affinity placements = %d, round-robin = %d; affinity should consolidate keys onto fewer workers",
			onPlacements, offPlacements)
	}
}

// The fleet benchmarks measure the end-to-end cost affinity removes:
// each iteration uses a fresh record count, so every locality key's
// trace must be generated anew on whichever workers receive its cells.
// Affinity routes each key to one home (one generation per key);
// round-robin makes both workers generate both workloads. Recorded by
// the bench gate for trend visibility, not threshold-gated (fleet
// timing is scheduling-sensitive).

func benchFleet(b *testing.B, affinity bool) {
	rb := &RemoteBackend{Affinity: &affinity, MinStragglerAge: time.Minute}
	addr, err := rb.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer rb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go func() { _ = ServeRemoteWorker(ctx, addr.String(), WorkerOptions{Workers: 1}) }()
	}
	deadline := time.After(10 * time.Second)
	for rb.BackendStats()[0].Joins < 2 {
		select {
		case <-deadline:
			b.Fatal("workers never joined")
		case <-time.After(5 * time.Millisecond):
		}
	}
	pool := NewPool(2, 42)
	pool.SetBackend(rb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RunAll(ctx, pool, Options{
			Filters: []string{"_exec-group"},
			Params:  Params{Trials: 16, Records: 20_011 + i},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetWarmAffinity(b *testing.B)   { benchFleet(b, true) }
func BenchmarkFleetWarmRoundRobin(b *testing.B) { benchFleet(b, false) }
