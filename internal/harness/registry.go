package harness

import (
	"context"
	"fmt"
	"io"
	"path"
	"sort"
	"sync"
	"time"
)

// Renderer is implemented by scenario results that can print themselves as
// a text table; CLIs use it to render Report.Result without knowing the
// concrete type.
type Renderer interface {
	Render(w io.Writer)
}

// Scenario is one named, parameterized experiment. Run decomposes the
// experiment into cells via Map, aggregates in shard order, and returns a
// JSON-marshalable result (conventionally one that also implements
// Renderer for text output).
type Scenario struct {
	// Name identifies the scenario in the registry and in run filters.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Defaults fills unset Params fields at run time.
	Defaults Params
	// Run executes the scenario on the pool.
	Run func(ctx context.Context, p Params, pool *Pool) (any, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario; it panics on empty or duplicate names so
// registration bugs surface at init time.
func Register(s Scenario) {
	if s.Name == "" || s.Run == nil {
		panic("harness: Register with empty name or nil Run")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("harness: duplicate scenario %q", s.Name))
	}
	registry[s.Name] = s
}

// Get returns the named scenario.
func Get(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// All returns every registered scenario sorted by name.
func All() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Match resolves filter patterns (path.Match globs, e.g. "fig*") into
// scenarios, sorted by name. Empty filters select everything. A pattern
// matching nothing is an error — it is almost always a typo.
func Match(filters []string) ([]Scenario, error) {
	if len(filters) == 0 {
		return All(), nil
	}
	seen := map[string]bool{}
	var out []Scenario
	for _, f := range filters {
		matched := false
		for _, s := range All() {
			ok, err := path.Match(f, s.Name)
			if err != nil {
				return nil, fmt.Errorf("harness: bad filter %q: %w", f, err)
			}
			if ok {
				matched = true
				if !seen[s.Name] {
					seen[s.Name] = true
					out = append(out, s)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("harness: no scenario matches %q", f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Report is one scenario's run record — everything needed to reproduce
// and compare it.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Workers  int    `json:"workers"`
	Params   Params `json:"params"`
	// Cells is how many cells the run executed.
	Cells uint64 `json:"cells"`
	// ElapsedMS is wall-clock time (0 when timing is suppressed for
	// golden-file comparison).
	ElapsedMS int64 `json:"elapsed_ms"`
	Result    any   `json:"result"`
}

// Options configures RunAll.
type Options struct {
	// Filters selects scenarios by glob; empty runs everything.
	Filters []string
	// Params overrides scenario defaults (zero fields keep defaults).
	Params Params
	// Observer, if set, streams completed cells for progress reporting.
	Observer func(Cell)
	// Timing controls whether Report.ElapsedMS is recorded.
	Timing bool
}

// RunAll executes the selected scenarios sequentially on the pool (each
// scenario parallelizes internally) and returns one Report per scenario in
// name order.
func RunAll(ctx context.Context, pool *Pool, opts Options) ([]Report, error) {
	if pool == nil {
		pool = Default()
	}
	scens, err := Match(opts.Filters)
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		pool.SetObserver(opts.Observer)
		defer pool.SetObserver(nil)
	}
	reports := make([]Report, 0, len(scens))
	for _, s := range scens {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		p := opts.Params.Merged(s.Defaults)
		before := pool.Cells()
		start := time.Now()
		// The scenario context makes every CellSpec Map emits under this
		// Run addressable by (scenario, params), which is what wire
		// backends ship to workers.
		pool.beginScenario(s.Name, p)
		res, err := s.Run(ctx, p, pool)
		pool.endScenario()
		if err != nil {
			return reports, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		rep := Report{
			Scenario: s.Name,
			Seed:     pool.RootSeed(),
			Workers:  pool.Workers(),
			Params:   p,
			Cells:    pool.Cells() - before,
			Result:   res,
		}
		if opts.Timing {
			rep.ElapsedMS = time.Since(start).Milliseconds()
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
