package harness

// Subprocess-backend tests re-exec this test binary as the worker: when
// the worker-mode env var is set, TestMain serves the frame protocol on
// stdio instead of running tests. Coordinator and worker therefore share
// one binary and one scenario registry, exactly like stbpu-suite and
// `stbpu-suite -worker`.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const (
	workerEnvVar         = "STBPU_HARNESS_TEST_WORKER"
	workerTraceDirEnvVar = "STBPU_HARNESS_TEST_TRACEDIR"
)

// wireCell is a cell payload exercising float/uint64 wire fidelity.
type wireCell struct {
	Shard int
	Seed  uint64
	Val   float64
}

// registerExecScenarios installs the deterministic scenarios both the
// coordinator tests and the re-exec'd worker need in their registries.
func registerExecScenarios() {
	Register(Scenario{
		Name:        "_exec-wire",
		Description: "exec-backend test scenario",
		Defaults:    Params{Trials: 16},
		Run: func(ctx context.Context, p Params, pool *Pool) (any, error) {
			return Map(ctx, pool, "_exec-wire", p.Trials,
				func(ctx context.Context, shard int, seed uint64) (wireCell, error) {
					return wireCell{
						Shard: shard,
						Seed:  seed,
						Val:   math.Sqrt(float64(seed%1e6)) / 3,
					}, nil
				})
		},
	})
	Register(Scenario{
		Name:        "_exec-trace",
		Description: "exec-backend trace-store scenario",
		Defaults:    Params{Trials: 4, Records: 2_000},
		Run: func(ctx context.Context, p Params, pool *Pool) (any, error) {
			cache := pool.Traces()
			return Map(ctx, pool, "_exec-trace", p.Trials,
				func(ctx context.Context, shard int, seed uint64) (uint64, error) {
					cols, _, err := cache.GetColumns("505.mcf", p.Records)
					if err != nil {
						return 0, err
					}
					digest := seed
					for i := 0; i < cols.Len(); i += 97 {
						digest = digest*1099511628211 ^ cols.PCs[i] ^ cols.Targets[i]
					}
					return digest, nil
				})
		},
	})
	Register(Scenario{
		Name:        "_exec-group",
		Description: "exec-backend locality-grouped trace scenario",
		Defaults:    Params{Trials: 8, Records: 2_000},
		Run: func(ctx context.Context, p Params, pool *Pool) (any, error) {
			workloads := []string{"505.mcf", "541.leela"}
			wl := func(shard int) string { return workloads[shard%len(workloads)] }
			cache := pool.Traces()
			return MapTraceMajor(ctx, pool, "_exec-group", p.Trials,
				func(shard int) int { return shard % len(workloads) },
				func(shard int) string { return Locality(wl(shard), p.Records) },
				func(ctx context.Context, shards []int, seeds []uint64) ([]uint64, error) {
					out := make([]uint64, len(shards))
					for i, shard := range shards {
						cols, _, err := cache.GetColumns(wl(shard), p.Records)
						if err != nil {
							return nil, err
						}
						digest := seeds[i]
						for j := 0; j < cols.Len(); j += 97 {
							digest = digest*1099511628211 ^ cols.PCs[j] ^ cols.Targets[j]
						}
						out[i] = digest
					}
					return out, nil
				})
		},
	})
	Register(Scenario{
		Name:        "_exec-failing",
		Description: "exec-backend failing-cell scenario",
		Defaults:    Params{Trials: 8},
		Run: func(ctx context.Context, p Params, pool *Pool) (any, error) {
			return Map(ctx, pool, "_exec-failing", p.Trials,
				func(ctx context.Context, shard int, seed uint64) (int, error) {
					if shard == 5 {
						return 0, fmt.Errorf("shard %d detonated", shard)
					}
					return shard, nil
				})
		},
	})
}

func TestMain(m *testing.M) {
	switch os.Getenv(workerEnvVar) {
	case "serve":
		registerExecScenarios()
		if err := ServeWorker(context.Background(), os.Stdin, os.Stdout, WorkerOptions{
			Workers:  1,
			TraceDir: os.Getenv(workerTraceDirEnvVar),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "die":
		// Simulate a worker killed mid-batch: swallow one request, leave a
		// trace on stderr, and vanish without answering.
		var req workerRequest
		_ = readFrame(os.Stdin, &req)
		fmt.Fprintln(os.Stderr, "worker going down for the kill test")
		os.Exit(3)
	case "wedge":
		// Simulate a hung (not dead) worker: swallow one request, then
		// block forever — the shape only a batch timeout can unstick.
		var req workerRequest
		_ = readFrame(os.Stdin, &req)
		fmt.Fprintln(os.Stderr, "worker wedged and will never answer")
		select {}
	case "remote-wedge":
		// A network worker for the kill -9 chaos test: join the fleet,
		// accept one chunk, announce it on stdout, then hang (still
		// heartbeating) until the test delivers SIGKILL.
		remoteWedgeWorkerMain()
	case "flaky":
		// Serve two batches correctly, then die mid-protocol — yields
		// exec Runs that partially succeeded before failing, the shape
		// that must not double-count cells once MultiBackend requeues.
		registerExecScenarios()
		served := 0
		for {
			var req workerRequest
			if err := readFrame(os.Stdin, &req); err != nil {
				os.Exit(0)
			}
			if served >= 2 {
				os.Exit(3)
			}
			served++
			resp := workerResponse{}
			if results, err := ExecuteCells(context.Background(), req.Cells, 1, nil); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Results = results
			}
			if err := writeFrame(os.Stdout, resp); err != nil {
				os.Exit(1)
			}
		}
	}
	registerExecScenarios()
	os.Exit(m.Run())
}

// newTestExecBackend spawns workers by re-exec'ing this test binary.
func newTestExecBackend(t *testing.T, workers int, mode string) *ExecBackend {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	b := &ExecBackend{
		Command: []string{exe},
		Env:     []string{workerEnvVar + "=" + mode},
		Workers: workers,
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func runWire(t *testing.T, pool *Pool) []Report {
	t.Helper()
	reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-wire"}})
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

// TestExecBackendMatchesLocal is the distributed determinism gate: the
// same scenario on subprocess workers must marshal byte-identically to
// the in-process run.
func TestExecBackendMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	local := runWire(t, NewPool(2, 1234))

	pool := NewPool(2, 1234)
	pool.SetBackend(newTestExecBackend(t, 2, "serve"))
	remote := runWire(t, pool)

	a, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("exec-backend results diverge from local:\nlocal:  %s\nremote: %s", a, b)
	}
	if remote[0].Cells != local[0].Cells {
		t.Errorf("cell accounting differs: local %d, remote %d", local[0].Cells, remote[0].Cells)
	}
}

// TestExecBackendNegotiatesBinary: a stock coordinator/worker pair must
// settle on the binary codec in the hello exchange and carry the actual
// work frames on it, without disturbing result bytes.
func TestExecBackendNegotiatesBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	local := runWire(t, NewPool(2, 777))

	pool := NewPool(2, 777)
	backend := newTestExecBackend(t, 1, "serve")
	pool.SetBackend(backend)
	remote := runWire(t, pool)

	if !bytes.Equal(mustJSON(t, local), mustJSON(t, remote)) {
		t.Error("binary-codec exec results diverge from local")
	}
	st := backend.BackendStats()[0]
	if st.WireBinaryBytes == 0 {
		t.Errorf("negotiation never reached the binary codec: %+v", st)
	}
	if st.WireJSONBytes == 0 {
		t.Errorf("handshake frames should still be JSON-counted: %+v", st)
	}
}

// TestExecWirePinnedJSON: Wire "json" must pin the whole exchange to
// JSON frames — the escape hatch for old workers and debugging — with
// bytes still identical to local.
func TestExecWirePinnedJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	local := runWire(t, NewPool(2, 888))

	pool := NewPool(2, 888)
	backend := newTestExecBackend(t, 1, "serve")
	backend.Wire = "json"
	pool.SetBackend(backend)
	remote := runWire(t, pool)

	if !bytes.Equal(mustJSON(t, local), mustJSON(t, remote)) {
		t.Error("pinned-JSON exec results diverge from local")
	}
	st := backend.BackendStats()[0]
	if st.WireBinaryBytes != 0 {
		t.Errorf("pinned-JSON wire still moved %d binary bytes", st.WireBinaryBytes)
	}
	if st.WireJSONBytes == 0 {
		t.Error("pinned-JSON wire counted no frame bytes at all")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExecBackendPropagatesCellErrors checks an application-level cell
// failure crosses the wire as that cell's error, not a transport fault.
func TestExecBackendPropagatesCellErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	pool := NewPool(2, 9)
	pool.SetBackend(newTestExecBackend(t, 1, "serve"))
	_, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-failing"}})
	if err == nil || !strings.Contains(err.Error(), "detonated") {
		t.Fatalf("err = %v, want the detonating cell's error", err)
	}
}

// TestExecBackendKilledWorkerSurfacesRootCause is the no-hang gate: a
// worker that dies mid-batch must produce a diagnosable error promptly.
func TestExecBackendKilledWorkerSurfacesRootCause(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	pool := NewPool(2, 9)
	pool.SetBackend(newTestExecBackend(t, 1, "die"))

	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-wire"}})
		done <- outcome{err}
	}()
	select {
	case o := <-done:
		if o.err == nil {
			t.Fatal("a killed worker produced no error")
		}
		msg := o.err.Error()
		if !strings.Contains(msg, "exec worker 0") || !strings.Contains(msg, "going down for the kill test") {
			t.Errorf("error lacks root cause (worker id + stderr): %v", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("killed worker hung the run instead of failing")
	}
}

// TestExecBackendBatchTimeoutKillsWedgedWorker: a worker that hangs
// (rather than exits) used to stall the run forever; the batch timeout
// must kill it, surface the stderr post-mortem, and fail the batch
// promptly so a router can requeue it.
func TestExecBackendBatchTimeoutKillsWedgedWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	pool := NewPool(2, 9)
	backend := newTestExecBackend(t, 1, "wedge")
	backend.BatchTimeout = 500 * time.Millisecond
	pool.SetBackend(backend)

	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-wire"}})
		done <- outcome{err}
	}()
	select {
	case o := <-done:
		if o.err == nil {
			t.Fatal("a wedged worker produced no error")
		}
		msg := o.err.Error()
		if !strings.Contains(msg, "batch timeout") || !strings.Contains(msg, "wedged and will never answer") {
			t.Errorf("error lacks the timeout diagnosis + stderr post-mortem: %v", o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wedged worker hung the run despite the batch timeout")
	}
}

// TestExecBatchTimeoutRequeuesOntoMulti: when the timed-out exec batch
// sits under a MultiBackend, the chunk must requeue onto the healthy
// backend and leave results byte-identical to a pure local run.
func TestExecBatchTimeoutRequeuesOntoMulti(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	local := runWire(t, NewPool(2, 642))

	wedged := newTestExecBackend(t, 1, "wedge")
	wedged.BatchTimeout = 500 * time.Millisecond
	multi := NewMultiBackend(
		WeightedBackend{Backend: wedged, Weight: 1},
		WeightedBackend{Backend: NewLocalBackend(2), Weight: 1},
	)
	pool := NewPool(2, 642)
	pool.SetBackend(multi)
	mixed := runWire(t, pool)

	a, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("timeout-requeued run diverges from local:\nlocal: %s\nmixed: %s", a, b)
	}
	retried := false
	for _, st := range multi.BackendStats() {
		if st.Retries > 0 {
			retried = true
		}
	}
	if !retried {
		t.Error("no retries recorded; the wedged backend's chunk was never requeued")
	}
}

// TestMixedRequeueCellAccounting: when exec workers fail batches that
// already had partial results, requeue onto the local backend must leave
// both the results and the cell accounting identical to a pure local
// run — cells from a failed batch may not be counted or streamed.
func TestMixedRequeueCellAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	local := runWire(t, NewPool(2, 321))

	multi := NewMultiBackend(
		WeightedBackend{Backend: newTestExecBackend(t, 2, "flaky"), Weight: 1},
		WeightedBackend{Backend: NewLocalBackend(2), Weight: 1},
	)
	pool := NewPool(2, 321)
	pool.SetBackend(multi)
	mixed := runWire(t, pool)

	a, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("requeued mixed run diverges from local:\nlocal: %s\nmixed: %s", a, b)
	}
	if mixed[0].Cells != local[0].Cells {
		t.Errorf("requeue double-counted cells: local %d, mixed %d", local[0].Cells, mixed[0].Cells)
	}
}

// TestExecBackendRejectsAnonymousCells: Map calls outside RunAll carry
// no scenario context, so wire backends must refuse them loudly.
func TestExecBackendRejectsAnonymousCells(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	pool := NewPool(1, 9)
	pool.SetBackend(newTestExecBackend(t, 1, "serve"))
	_, err := Map(context.Background(), pool, "anon", 2,
		func(ctx context.Context, shard int, seed uint64) (int, error) { return shard, nil })
	if err == nil || !strings.Contains(err.Error(), "not addressable") {
		t.Fatalf("err = %v, want the not-addressable refusal", err)
	}
}

// TestServeWorkerProtocolRoundTrip drives the worker loop in-process
// over pipes: one request frame in, one result frame out, clean EOF
// shutdown.
func TestServeWorkerProtocolRoundTrip(t *testing.T) {
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	serveDone := make(chan error, 1)
	go func() { serveDone <- ServeWorker(context.Background(), reqR, respW, WorkerOptions{Workers: 1}) }()

	params := Params{Trials: 4}
	specs := make([]CellSpec, params.Trials)
	for i := range specs {
		specs[i] = CellSpec{
			Scenario: "_exec-wire", Params: params, Scope: "_exec-wire",
			Shard: i, Seed: ShardSeed(42, "_exec-wire", i), RootSeed: 42,
		}
	}
	writeDone := make(chan error, 1)
	go func() { writeDone <- writeFrame(reqW, workerRequest{Cells: specs}) }()
	var resp workerResponse
	if err := readFrame(respR, &resp); err != nil {
		t.Fatal(err)
	}
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("worker error: %s", resp.Err)
	}
	if len(resp.Results) != params.Trials {
		t.Fatalf("got %d results, want %d", len(resp.Results), params.Trials)
	}
	for i, r := range resp.Results {
		var cell wireCell
		if err := decodeInto(&resp.Results[i], &cell); err != nil {
			t.Fatal(err)
		}
		if cell.Shard != r.Shard || cell.Seed != ShardSeed(42, "_exec-wire", r.Shard) {
			t.Errorf("result %d inconsistent: %+v", i, cell)
		}
	}

	reqW.Close()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("ServeWorker returned %v on clean EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("ServeWorker did not stop on EOF")
	}
}

// TestExecWorkerSharesTraceDir is the worker-side gate for the
// persistent trace tier: subprocess workers pointed at a shared
// -trace-dir spill the traces they generate (visible as STBT files),
// a second worker fleet serves from those spills, and results stay
// byte-identical to the in-process run either way.
func TestExecWorkerSharesTraceDir(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	dir := t.TempDir()

	runTrace := func(t *testing.T, pool *Pool) []byte {
		t.Helper()
		reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-trace"}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	local := runTrace(t, NewPool(2, 77))

	newBackend := func() *ExecBackend {
		b := newTestExecBackend(t, 1, "serve")
		b.Env = append(b.Env, workerTraceDirEnvVar+"="+dir)
		return b
	}
	pool := NewPool(2, 77)
	pool.SetBackend(newBackend())
	first := runTrace(t, pool)
	if !bytes.Equal(local, first) {
		t.Error("trace-dir worker results diverge from local")
	}
	spills, err := filepath.Glob(filepath.Join(dir, "*.stbt"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("worker spilled no traces into %s (err %v)", dir, err)
	}

	// A fresh worker fleet decodes the spill instead of regenerating;
	// replay must not notice the difference.
	pool2 := NewPool(2, 77)
	pool2.SetBackend(newBackend())
	second := runTrace(t, pool2)
	if !bytes.Equal(local, second) {
		t.Error("spill-served worker results diverge from local")
	}
}
