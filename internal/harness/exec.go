package harness

// Subprocess execution: ExecBackend ships CellSpec batches to worker
// processes (`stbpu-suite -worker`) over length-prefixed frames on
// stdin/stdout (JSON, or the negotiated binary codec — see wire.go)
// and merges the CellResults they send back. A worker
// executes a spec by looking the scenario up in its own registry and
// re-running the scenario's decomposition with a capture backend that
// runs only the requested shards — cells are pure functions of
// (scenario, params, scope, shard, root seed), so the worker's results
// are bit-identical to what the coordinator would have computed.
//
// The protocol is the building block for multi-machine runs: anything
// that can pipe stdin/stdout to a process with the same binary — ssh, a
// container runner, a job scheduler — can host a worker.
//
// Cache locality: each worker process generates its own traces into a
// process-local tracestore.Store that persists across batches. The
// coordinator's store is not consulted for remote cells, so a trace may
// be generated once per worker instead of once per run — deterministic
// generation keeps results identical, at the cost of duplicated
// generation work (see internal/tracestore's package comment).

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"stbpu/internal/snapstore"
	"stbpu/internal/trace/spec"
	"stbpu/internal/tracestore"
)

// maxFrameBytes bounds a protocol frame so a corrupt length prefix
// cannot trigger a giant allocation.
const maxFrameBytes = 256 << 20

// execHello opens the exec stdio wire: the coordinator's first frame
// carries no cells, only the codecs it speaks. A bare/old worker
// treats it as an empty batch and answers a plain response with no
// codec — the coordinator then stays on JSON for the session.
type execHello struct {
	Codecs []string `json:"codecs,omitempty"`
}

// workerRequest is one coordinator → worker frame.
type workerRequest struct {
	// Hello, when set, makes this a handshake frame (no cells).
	Hello *execHello `json:"hello,omitempty"`
	// Prefetch carries locality keys (see Locality) of upcoming chunks
	// so the worker can overlap trace/snapshot loads with this batch's
	// compute. Advisory: ignoring it never changes results.
	Prefetch []string   `json:"prefetch,omitempty"`
	Cells    []CellSpec `json:"cells"`
}

// workerResponse is one worker → coordinator frame. Err reports a
// batch-level failure (unknown scenario, params mismatch); per-cell
// failures travel inside Results. Permanent marks Err as a
// deterministic failure of the batch itself (see ErrPermanent), which
// the coordinator must not requeue onto another backend.
type workerResponse struct {
	// Codec answers a hello with the frame codec the worker selected
	// (empty = JSON); absent outside handshakes.
	Codec     string       `json:"codec,omitempty"`
	Results   []CellResult `json:"results,omitempty"`
	Err       string       `json:"err,omitempty"`
	Permanent bool         `json:"permanent,omitempty"`
}

// writeFrame emits a 4-byte big-endian length followed by the JSON
// encoding of v.
func writeFrame(w io.Writer, v any) error {
	_, err := writeJSONFrame(w, v)
	return err
}

// writeJSONFrame is writeFrame reporting the payload size, for the
// per-codec byte accounting.
func writeJSONFrame(w io.Writer, v any) (int, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	return len(payload), writeRawFrame(w, payload)
}

// readFrame reads one length-prefixed JSON frame into v. A clean EOF
// before the header returns io.EOF; EOF mid-frame returns
// io.ErrUnexpectedEOF.
func readFrame(r io.Reader, v any) error {
	_, err := readJSONFrame(r, v)
	return err
}

// readJSONFrame is readFrame reporting the payload size, for the
// per-codec byte accounting.
func readJSONFrame(r io.Reader, v any) (int, error) {
	payload, err := readRawFrame(r)
	if err != nil {
		return 0, err
	}
	return len(payload), json.Unmarshal(payload, v)
}

// ---------------------------------------------------------------------------
// Coordinator side.

// execChunkTarget is how many chunks per worker a batch splits into, so
// fast workers can steal from slow ones without per-cell round-trips.
const execChunkTarget = 4

// ExecBackend executes cells on a fleet of subprocess workers speaking
// the length-prefixed JSON protocol. Workers are spawned lazily on the
// first Run and live until Close; a worker that died is respawned on the
// next Run.
type ExecBackend struct {
	// Command is the worker argv (nil means this executable with
	// "-worker" appended — the stbpu-suite worker mode).
	Command []string
	// Env entries are appended to the inherited environment.
	Env []string
	// Workers is the subprocess count (<= 0 means 1).
	Workers int
	// BatchTimeout bounds one batch round-trip. A worker that exceeds it
	// is presumed hung — not dead, so no pipe error would ever surface —
	// and is killed, failing the batch with its stderr post-mortem so a
	// router can requeue the chunk. <= 0 means no deadline.
	BatchTimeout time.Duration
	// Wire pins the frame codec: "json" forces JSON frames (skipping
	// the handshake), empty negotiates the binary codec per worker.
	Wire string

	mu     sync.Mutex
	procs  []*execWorker
	closed bool

	sink   atomic.Pointer[cellNotify]
	cells  atomic.Uint64
	wallNS atomic.Int64
	wire   wireStats
}

// Name implements Backend.
func (b *ExecBackend) Name() string { return "exec" }

func (b *ExecBackend) setSink(fn cellNotify) { b.sink.Store(&fn) }

func (b *ExecBackend) notify(c Cell, spec CellSpec, res CellResult) {
	if fn := b.sink.Load(); fn != nil && *fn != nil {
		(*fn)(c, spec, res)
	}
}

// BackendStats implements StatsReporter.
func (b *ExecBackend) BackendStats() []BackendStats {
	s := BackendStats{
		Backend: b.Name(),
		Cells:   b.cells.Load(),
		WallMS:  time.Duration(b.wallNS.Load()).Milliseconds(),
	}
	b.wire.fill(&s)
	return []BackendStats{s}
}

// ensureStarted spawns (or respawns) the worker fleet.
func (b *ExecBackend) ensureStarted() ([]*execWorker, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errors.New("exec backend is closed")
	}
	n := b.Workers
	if n <= 0 {
		n = 1
	}
	argv := b.Command
	if argv == nil {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("resolve worker executable: %w", err)
		}
		argv = []string{exe, "-worker"}
	}
	if len(argv) == 0 {
		return nil, errors.New("exec backend has an empty worker command")
	}
	for len(b.procs) < n {
		b.procs = append(b.procs, nil)
	}
	for i := 0; i < n; i++ {
		if b.procs[i] != nil && !b.procs[i].dead.Load() {
			continue
		}
		w, err := startExecWorker(i, argv, b.Env, b.BatchTimeout, b.Wire, &b.wire)
		if err != nil {
			return nil, fmt.Errorf("spawn worker %d: %w", i, err)
		}
		b.procs[i] = w
	}
	return append([]*execWorker(nil), b.procs[:n]...), nil
}

// Run implements Backend: the batch splits into chunks pulled by the
// worker fleet; a dead or misbehaving worker fails the whole batch with
// a root-caused error (MultiBackend can then requeue it elsewhere).
func (b *ExecBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	start := time.Now()
	defer func() { b.wallNS.Add(int64(time.Since(start))) }()
	if len(specs) == 0 {
		return nil, nil
	}
	procs, err := b.ensureStarted()
	if err != nil {
		return nil, err
	}

	chunkSize := (len(specs) + len(procs)*execChunkTarget - 1) / (len(procs) * execChunkTarget)
	if chunkSize < 1 {
		chunkSize = 1
	}
	// An indexed queue instead of a channel: popping a chunk also peeks
	// at what is still queued, so each request can carry a prefetch hint
	// for the next locality the fleet will need.
	queue := &execQueue{}
	for off := 0; off < len(specs); off += chunkSize {
		end := off + chunkSize
		if end > len(specs) {
			end = len(specs)
		}
		queue.chunks = append(queue.chunks, specs[off:end])
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	specByShard := make(map[int]CellSpec, len(specs))
	for _, s := range specs {
		specByShard[s.Shard] = s
	}

	var (
		mu      sync.Mutex
		merged  []CellResult
		firstEr error
	)
	var wg sync.WaitGroup
	for _, w := range procs {
		wg.Add(1)
		go func(w *execWorker) {
			defer wg.Done()
			for ctx.Err() == nil {
				chunk, prefetch := queue.pop()
				if chunk == nil {
					return
				}
				results, err := w.roundTrip(ctx, chunk, prefetch)
				if err != nil {
					mu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				mu.Lock()
				merged = append(merged, results...)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		// Nothing from this batch is counted or streamed: a router
		// (MultiBackend) will requeue the whole batch elsewhere, and
		// cells observed here would then be double-counted in
		// Pool.Cells()/Report.Cells, breaking cross-backend byte
		// identity on exactly the requeue path.
		return nil, firstEr
	}
	sortResultsByShard(merged)
	for i := range merged {
		r := &merged[i]
		b.cells.Add(1)
		s := specByShard[r.Shard]
		b.notify(Cell{
			Backend: b.Name(), Scope: s.Scope, Shard: r.Shard, Seed: s.Seed,
			Elapsed: time.Duration(r.ElapsedUS) * time.Microsecond, Err: r.CellErr(),
		}, s, *r)
	}
	return merged, nil
}

// Close shuts the worker fleet down: stdin close asks each worker to
// exit cleanly, and stragglers are killed.
func (b *ExecBackend) Close() error {
	b.mu.Lock()
	procs := b.procs
	b.procs = nil
	b.closed = true
	b.mu.Unlock()
	var first error
	for _, w := range procs {
		if w == nil {
			continue
		}
		if err := w.shutdown(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// execQueue hands out batch chunks in order; pop also derives the
// prefetch hint for the request that will carry the chunk.
type execQueue struct {
	mu     sync.Mutex
	chunks [][]CellSpec
	next   int
}

// pop returns the next chunk plus the locality key of the first later
// queued chunk whose key differs from this chunk's — the artifact the
// fleet will need next, worth warming during this chunk's compute.
// Consecutive chunks usually share a key (Map emits shard order and
// trace-major groups are contiguous), so the hint is empty for most
// pops and each distinct key is hinted roughly once per transition.
func (q *execQueue) pop() (chunk []CellSpec, prefetch []string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.next >= len(q.chunks) {
		return nil, nil
	}
	chunk = q.chunks[q.next]
	q.next++
	cur := chunk[0].Locality
	for i := q.next; i < len(q.chunks); i++ {
		if loc := q.chunks[i][0].Locality; loc != "" && loc != cur {
			prefetch = []string{loc}
			break
		}
	}
	return chunk, prefetch
}

// execWorker is one subprocess speaking the frame protocol. A worker
// handles one round-trip at a time (guarded by mu), so frames never
// interleave even when Run is called concurrently.
type execWorker struct {
	id      int
	cmd     *exec.Cmd
	in      io.WriteCloser
	out     *bufio.Reader
	stderr  *tailBuffer
	timeout time.Duration // per-batch deadline; 0 = none
	wireCfg string        // backend Wire config ("json" pins JSON)
	stats   *wireStats

	mu        sync.Mutex
	helloDone bool
	codec     string // negotiated frame codec ("" = JSON)
	dead      atomic.Bool
	killOnce  sync.Once
	waitOnce  sync.Once
	waitRes   error
}

func startExecWorker(id int, argv, env []string, timeout time.Duration, wireCfg string, stats *wireStats) (*execWorker, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	tail := &tailBuffer{max: 4096}
	cmd.Stderr = tail
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &execWorker{id: id, cmd: cmd, in: in, out: bufio.NewReader(out), stderr: tail,
		timeout: timeout, wireCfg: wireCfg, stats: stats}, nil
}

// handshake negotiates the frame codec on the worker's first
// round-trip (always JSON frames). An old worker treats the hello as
// an empty batch and answers with no codec, leaving the session on
// JSON; a worker that died on its first frame surfaces through the
// same root-caused error path as any other protocol failure.
func (w *execWorker) handshake() error {
	if w.helloDone {
		return nil
	}
	w.helloDone = true
	if w.wireCfg == wireForceJSON {
		return nil
	}
	n, err := writeJSONFrame(w.in, workerRequest{Hello: &execHello{Codecs: wireOffer(w.wireCfg)}})
	if err != nil {
		return err
	}
	w.stats.count("", n)
	var resp workerResponse
	rn, err := readJSONFrame(w.out, &resp)
	if err != nil {
		return err
	}
	w.stats.count("", rn)
	if resp.Err != "" {
		return fmt.Errorf("hello rejected: %s", resp.Err)
	}
	if resp.Codec == wireCodecBinary {
		w.codec = wireCodecBinary
	}
	return nil
}

// writeRequest frames req in the session's negotiated codec.
func (w *execWorker) writeRequest(req workerRequest) error {
	if w.codec == wireCodecBinary {
		payload := encodeWireMsg(&wireMsg{kind: wireKindWork, cells: req.Cells, prefetch: req.Prefetch})
		w.stats.count(w.codec, len(payload))
		return writeRawFrame(w.in, payload)
	}
	n, err := writeJSONFrame(w.in, req)
	w.stats.count("", n)
	return err
}

// readResponse reads one response frame in the negotiated codec.
func (w *execWorker) readResponse(resp *workerResponse) error {
	if w.codec == wireCodecBinary {
		payload, err := readRawFrame(w.out)
		if err != nil {
			return err
		}
		w.stats.count(w.codec, len(payload))
		m, err := decodeWireMsg(payload)
		if err != nil {
			return err
		}
		if m.kind != wireKindResults {
			return fmt.Errorf("unexpected frame kind %d (want results)", m.kind)
		}
		resp.Results, resp.Err, resp.Permanent = m.results, m.err, m.permanent
		return nil
	}
	n, err := readJSONFrame(w.out, resp)
	w.stats.count("", n)
	return err
}

// roundTrip sends one batch and waits for its response. Any transport
// failure marks the worker dead and returns a root-caused error carrying
// the worker's exit state and recent stderr, so a killed subprocess
// surfaces as a diagnosis instead of a hang.
func (w *execWorker) roundTrip(ctx context.Context, chunk []CellSpec, prefetch []string) ([]CellResult, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead.Load() {
		return nil, fmt.Errorf("exec worker %d is dead", w.id)
	}

	type outcome struct {
		resp workerResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		if o.err = w.handshake(); o.err == nil {
			if o.err = w.writeRequest(workerRequest{Cells: chunk, Prefetch: prefetch}); o.err == nil {
				o.err = w.readResponse(&o.resp)
			}
		}
		done <- o
	}()

	// A hung worker never errors the pipe, so the context and the batch
	// deadline are the only ways out of this select. The deadline kills
	// the worker (surfacing its stderr) and fails the batch so a router
	// can requeue the chunk on a healthy backend.
	var deadline <-chan time.Time
	if w.timeout > 0 {
		t := time.NewTimer(w.timeout)
		defer t.Stop()
		deadline = t.C
	}
	var o outcome
	select {
	case o = <-done:
	case <-ctx.Done():
		w.fail() // unblocks the writer/reader goroutine
		<-done
		return nil, ctx.Err()
	case <-deadline:
		postmortem := w.fail() // kills the worker, unblocking the goroutine
		<-done
		return nil, fmt.Errorf("exec worker %d: batch of %d cells exceeded the %v batch timeout: %s",
			w.id, len(chunk), w.timeout, postmortem)
	}
	if o.err != nil {
		return nil, fmt.Errorf("exec worker %d: protocol failed (%v): %s", w.id, o.err, w.fail())
	}
	if o.resp.Err != "" {
		err := fmt.Errorf("exec worker %d: %s", w.id, o.resp.Err)
		if o.resp.Permanent {
			// The worker is alive and the protocol intact: the batch
			// itself is broken, identically so everywhere.
			err = Permanent(err)
		}
		return nil, err
	}
	return o.resp.Results, nil
}

// fail marks the worker dead, kills the process, and returns a one-line
// post-mortem (exit state plus recent stderr).
func (w *execWorker) fail() string {
	w.dead.Store(true)
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
	})
	state := "exit state unknown"
	done := make(chan struct{})
	go func() {
		w.waitOnce.Do(func() { w.waitRes = w.cmd.Wait() })
		close(done)
	}()
	select {
	case <-done:
		if w.waitRes != nil {
			state = w.waitRes.Error()
		} else {
			state = "exited cleanly"
		}
	case <-time.After(2 * time.Second):
	}
	if tail := w.stderr.String(); tail != "" {
		return fmt.Sprintf("worker %s; recent stderr: %q", state, tail)
	}
	return "worker " + state
}

// shutdown closes stdin (the worker's clean-exit signal) and reaps the
// process, killing it if it lingers.
func (w *execWorker) shutdown() error {
	w.dead.Store(true)
	_ = w.in.Close()
	done := make(chan struct{})
	go func() {
		w.waitOnce.Do(func() { w.waitRes = w.cmd.Wait() })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		w.killOnce.Do(func() {
			if w.cmd.Process != nil {
				_ = w.cmd.Process.Kill()
			}
		})
		<-done
	}
	return nil
}

// tailBuffer keeps the last max bytes written, for stderr post-mortems.
type tailBuffer struct {
	mu  sync.Mutex
	max int
	buf []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = t.buf[len(t.buf)-t.max:]
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// ---------------------------------------------------------------------------
// Worker side.

// WorkerOptions configures ServeWorker.
type WorkerOptions struct {
	// Workers is the in-process concurrency used to execute a batch's
	// cells (<= 0 means GOMAXPROCS).
	Workers int
	// CacheBytes bounds the worker's process-local trace store
	// (<= 0 means tracestore.DefaultMaxBytes).
	CacheBytes int64
	// TraceDir, when nonempty, points the worker's trace store at the
	// shared persistent tier (tracestore.SetDir): workers decode traces
	// another process already generated instead of regenerating them.
	TraceDir string
	// TraceMajor toggles trace-major grouping in the worker's capture
	// runs (nil means the default, on). Pure scheduling: results are
	// bit-identical either way.
	TraceMajor *bool
	// TraceMmap switches the worker's disk tier into zero-copy mmap
	// mode (tracestore.Store.SetMapped). Only meaningful with TraceDir.
	TraceMmap bool
	// Snapshots toggles the warm-state snapshot tier in the worker's
	// capture runs (nil means the default, on). Pure acceleration:
	// results are bit-identical either way.
	Snapshots *bool
	// SnapBytes bounds the worker's process-local checkpoint store
	// (<= 0 means snapstore.DefaultMaxBytes).
	SnapBytes int64
	// SnapDir, when nonempty, points the worker's checkpoint store at
	// the shared persistent tier (snapstore.SetDir): workers restore
	// warm predictor state another process already computed instead of
	// replaying warmup prefixes.
	SnapDir string
	// WorkloadSpecs holds raw JSON workload-spec documents
	// (internal/trace/spec) to register before serving cells, so the
	// worker resolves the same spec workload names the coordinator
	// schedules. Content-hashed names make registration idempotent.
	WorkloadSpecs []string
	// Wire pins the worker's frame codec: "json" refuses the binary
	// codec in handshakes (the worker then behaves like a bare/old
	// worker); empty accepts whatever the coordinator offers.
	Wire string
}

// registerWorkloadSpecs parses and registers raw spec documents a
// worker received via flags or the coordinator's welcome frame.
func registerWorkloadSpecs(docs []string) error {
	for _, doc := range docs {
		s, err := spec.Parse([]byte(doc))
		if err != nil {
			return fmt.Errorf("worker: workload spec: %w", err)
		}
		if err := spec.Register(s); err != nil {
			return fmt.Errorf("worker: workload spec %q: %w", s.Name, err)
		}
	}
	return nil
}

// traceMajorOn resolves the tri-state flag (nil = default on).
func (o WorkerOptions) traceMajorOn() bool {
	return o.TraceMajor == nil || *o.TraceMajor
}

// snapshotsOn resolves the tri-state flag (nil = default on).
func (o WorkerOptions) snapshotsOn() bool {
	return o.Snapshots == nil || *o.Snapshots
}

// cellEnv bundles the per-process execution environment capture runs
// inherit: the stores cells share and the scheduling/acceleration
// toggles, none of which may change results.
type cellEnv struct {
	workers    int
	store      *tracestore.Store
	snaps      *snapstore.Store
	traceMajor bool
	snapshots  bool
}

// cellEnvFor builds the env a serving worker uses for every batch.
func cellEnvFor(opts WorkerOptions, store *tracestore.Store, snaps *snapstore.Store) cellEnv {
	return cellEnv{
		workers:    opts.Workers,
		store:      store,
		snaps:      snaps,
		traceMajor: opts.traceMajorOn(),
		snapshots:  opts.snapshotsOn(),
	}
}

// prefetch starts background warmup of the stores for upcoming
// locality keys: trace columns materialize via the tracestore's
// singleflight entry (so a later GetColumns joins rather than
// duplicates the work) and matching snapshot spills are pulled into
// the page cache. Advisory and asynchronous — results never depend on
// it.
func (env cellEnv) prefetch(keys []string) {
	for _, k := range keys {
		name, records, ok := SplitLocality(k)
		if !ok {
			continue
		}
		if env.store != nil {
			env.store.Prefetch(name, records)
		}
		if env.snaps != nil {
			env.snaps.Prefetch(name)
		}
	}
}

// ServeWorker runs the worker loop: read a CellSpec batch frame, execute
// it, write the CellResult frame, until EOF on r. Workload traces come
// from one process-local store that persists across batches.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, opts WorkerOptions) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	if err := registerWorkloadSpecs(opts.WorkloadSpecs); err != nil {
		return err
	}
	store, err := newWorkerStore(opts)
	if err != nil {
		return err
	}
	snaps, err := newWorkerSnapStore(opts)
	if err != nil {
		return err
	}
	env := cellEnvFor(opts, store, snaps)
	codec := ""
	for {
		payload, err := readRawFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // clean shutdown: coordinator closed stdin
			}
			return fmt.Errorf("worker: read request: %w", err)
		}
		var req workerRequest
		if len(payload) > 0 && payload[0] == binMagic {
			m, err := decodeWireMsg(payload)
			if err != nil {
				return fmt.Errorf("worker: decode request: %w", err)
			}
			req.Cells, req.Prefetch = m.cells, m.prefetch
		} else if err := json.Unmarshal(payload, &req); err != nil {
			return fmt.Errorf("worker: read request: %w", err)
		}

		if req.Hello != nil {
			// Handshake: pick the codec for subsequent frames; the answer
			// itself is always JSON.
			codec = negotiateCodec(req.Hello.Codecs, opts.Wire)
			if err := writeFrame(bw, workerResponse{Codec: codec}); err != nil {
				return fmt.Errorf("worker: write hello response: %w", err)
			}
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("worker: flush hello response: %w", err)
			}
			continue
		}
		if len(req.Prefetch) > 0 {
			env.prefetch(req.Prefetch)
		}

		var resp workerResponse
		results, err := executeCells(ctx, req.Cells, env)
		if err != nil {
			resp.Err = err.Error()
			resp.Permanent = errors.Is(err, ErrPermanent)
		} else {
			resp.Results = results
		}
		if codec == wireCodecBinary {
			out := encodeWireMsg(&wireMsg{kind: wireKindResults, results: resp.Results, err: resp.Err, permanent: resp.Permanent})
			err = writeRawFrame(bw, out)
		} else {
			err = writeFrame(bw, resp)
		}
		if err != nil {
			return fmt.Errorf("worker: write response: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("worker: flush response: %w", err)
		}
	}
}

// newWorkerStore builds the process-local trace store a worker executes
// cells against, wiring the persistent disk tier when configured.
func newWorkerStore(opts WorkerOptions) (*tracestore.Store, error) {
	store := tracestore.New(opts.CacheBytes, nil)
	store.SetMapped(opts.TraceMmap)
	if opts.TraceDir != "" {
		if err := store.SetDir(opts.TraceDir); err != nil {
			return nil, fmt.Errorf("worker: trace dir %s: %w", opts.TraceDir, err)
		}
	}
	return store, nil
}

// newWorkerSnapStore builds the process-local checkpoint store a worker
// executes cells against, wiring the persistent disk tier when
// configured.
func newWorkerSnapStore(opts WorkerOptions) (*snapstore.Store, error) {
	snaps := snapstore.New(opts.SnapBytes)
	if opts.SnapDir != "" {
		if err := snaps.SetDir(opts.SnapDir); err != nil {
			return nil, fmt.Errorf("worker: snap dir %s: %w", opts.SnapDir, err)
		}
	}
	return snaps, nil
}

// errCellsCaptured aborts a scenario Run once the capture backend has
// executed every requested shard; the decomposition after the Map call
// never runs on the worker (aggregation happens on the coordinator).
var errCellsCaptured = errors.New("harness: requested cells captured")

// ExecuteCells executes wire specs in this process: specs group by
// (scenario, scope, params, root seed), and each group re-runs its
// scenario's decomposition with a capture backend that executes only the
// requested shards on a workers-wide local pool. Results come back in
// wire form, ready to frame.
func ExecuteCells(ctx context.Context, specs []CellSpec, workers int, store *tracestore.Store) ([]CellResult, error) {
	return executeCells(ctx, specs, cellEnv{workers: workers, store: store, traceMajor: true, snapshots: true})
}

// executeCells is ExecuteCells with the capture pools' full environment
// explicit (serving workers plumb it from WorkerOptions).
func executeCells(ctx context.Context, specs []CellSpec, env cellEnv) ([]CellResult, error) {
	type groupKey struct {
		scenario, scope, params string
		root                    uint64
	}
	keyOf := func(s CellSpec) (groupKey, error) {
		pj, err := CanonicalParams(s.Params)
		if err != nil {
			// Unencodable params are a property of the spec, not of this
			// worker: every backend would fail the batch identically.
			return groupKey{}, Permanent(err)
		}
		return groupKey{scenario: s.Scenario, scope: s.Scope, params: pj, root: s.RootSeed}, nil
	}
	groups := map[groupKey][]CellSpec{}
	var order []groupKey
	for _, s := range specs {
		if s.Scenario == "" {
			return nil, fmt.Errorf("spec %s/%d has no scenario: cells mapped outside RunAll are not addressable remotely", s.Scope, s.Shard)
		}
		k, err := keyOf(s)
		if err != nil {
			return nil, err
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}

	var out []CellResult
	for _, k := range order {
		group := groups[k]
		scen, ok := Get(k.scenario)
		if !ok {
			return nil, fmt.Errorf("scenario %q is not registered in this worker", k.scenario)
		}
		results, err := captureScenarioCells(ctx, scen, group, env)
		if err != nil {
			return nil, err
		}
		out = append(out, results...)
	}
	return out, nil
}

// captureScenarioCells re-runs one scenario's decomposition and captures
// the requested shards of the requested scope.
func captureScenarioCells(ctx context.Context, scen Scenario, group []CellSpec, env cellEnv) ([]CellResult, error) {
	scope := group[0].Scope
	params := group[0].Params
	want := make(map[int]bool, len(group))
	for _, s := range group {
		want[s.Shard] = true
	}
	cap := &captureBackend{scope: scope, want: want, inner: NewLocalBackend(env.workers)}
	pool := NewPool(env.workers, group[0].RootSeed)
	pool.SetTraceMajor(env.traceMajor)
	pool.SetSnapshots(env.snapshots)
	if env.store != nil {
		pool.SetTraceStore(env.store)
	}
	if env.snaps != nil {
		pool.SetSnapStore(env.snaps)
	}
	pool.SetBackend(cap)
	// Let the scenario's own MapTraceMajor call group only the shards
	// this batch asked for (pure scheduling; see traceMajorWantKey).
	_, err := scen.Run(withTraceMajorWant(ctx, scope, want), params, pool)
	pool.endScenario()
	if !cap.captured {
		// Both shapes are deterministic scenario bugs — the decomposition
		// itself is broken for these params, on any backend — so they are
		// marked Permanent: requeueing the batch elsewhere would only
		// repeat the failure across the whole fleet.
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, Permanent(fmt.Errorf("scenario %s failed before reaching scope %q: %w", scen.Name, scope, err))
		}
		return nil, Permanent(fmt.Errorf("scenario %s never mapped scope %q (params mismatch?)", scen.Name, scope))
	}
	if len(cap.results) != len(want) {
		// A canceled context also stops the batch early — report the
		// interrupt, not a bogus decomposition diagnosis.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// A failing cell legitimately stops the batch early; only a
		// clean-but-short batch means the worker's decomposition disagrees
		// with the coordinator's.
		failed := false
		for _, r := range cap.results {
			if r.Err != "" {
				failed = true
				break
			}
		}
		if !failed {
			return nil, Permanent(fmt.Errorf("scenario %s scope %q produced %d of %d requested cells (cell space mismatch)",
				scen.Name, scope, len(cap.results), len(want)))
		}
	}
	return cap.results, nil
}

// captureBackend intercepts the Map call for one scope: it executes only
// the wanted shards, stores their wire-encoded results, and aborts the
// scenario Run with errCellsCaptured. Map calls for other scopes (a
// multi-scope scenario) execute fully so later scopes stay reachable.
type captureBackend struct {
	scope string
	want  map[int]bool
	inner *LocalBackend

	captured bool
	results  []CellResult
}

func (c *captureBackend) Name() string { return "capture" }

func (c *captureBackend) Close() error { return nil }

func (c *captureBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	if len(specs) == 0 || specs[0].Scope != c.scope {
		return c.inner.Run(ctx, specs)
	}
	wanted := make([]CellSpec, 0, len(c.want))
	for _, s := range specs {
		if c.want[s.Shard] {
			wanted = append(wanted, s)
		}
	}
	results, err := c.inner.Run(ctx, wanted)
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].encodeWire()
	}
	c.captured = true
	c.results = results
	return nil, errCellsCaptured
}
