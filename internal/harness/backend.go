package harness

// Backend abstraction: Map no longer owns a goroutine pool directly —
// it describes each cell as a CellSpec and hands batches to a Backend.
// LocalBackend is the original in-process pool behind the interface;
// ExecBackend (exec.go) ships specs to subprocess workers over a
// length-prefixed JSON protocol; MultiBackend routes across several
// backends with retry/requeue. Because a cell is a pure function of
// (scenario, params, scope, shard, root seed), results are bit-identical
// regardless of which backend ran which cell — Map merges everything
// back into shard order. See docs/ARCHITECTURE.md "Distributed cells".

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cellFunc is the type-erased in-process form of a Map cell function.
type cellFunc func(ctx context.Context, shard int, seed uint64) (any, error)

// CellSpec identifies one executable cell. The exported fields address
// the cell from any process: a worker that knows only the spec can
// re-derive the cell's inputs (scenario registry lookup + ShardSeed) and
// produce the same result the coordinator would have.
type CellSpec struct {
	// Scenario names the registered scenario whose Run decomposes into
	// this cell's scope. Empty when Map runs outside RunAll; such specs
	// are executable only by in-process backends (the fn field).
	Scenario string `json:"scenario,omitempty"`
	// Params are the merged parameters the scenario Run received.
	Params Params `json:"params"`
	// Scope is the scenario-local cell-space name passed to Map.
	Scope string `json:"scope"`
	// Shard is the cell's dense index within the scope.
	Shard int `json:"shard"`
	// Seed is the derived per-cell seed, ShardSeed(RootSeed, Scope, Shard).
	Seed uint64 `json:"seed"`
	// RootSeed is the pool's root seed, from which workers re-derive Seed.
	RootSeed uint64 `json:"root_seed"`
	// Locality names the warm artifact (trace columns, snapshots) the
	// cell replays — "workload@records" for trace-major groups, empty
	// otherwise. Pure scheduling metadata: locality-aware backends route
	// cells sharing a key to the worker that last held the artifact, and
	// prefetch hints carry upcoming keys; results never depend on it.
	Locality string `json:"locality,omitempty"`

	// fn is the in-process cell function. It never crosses the wire;
	// remote workers reconstruct the cell from the exported fields.
	fn cellFunc
}

// CellResult is the outcome of one cell. In-process backends carry the
// value as a live Go value; wire backends carry it as JSON (the encoding
// round-trips float64/uint64 exactly, so both transports yield identical
// results).
type CellResult struct {
	Shard int `json:"shard"`
	// Value is the wire encoding of the cell's result.
	Value json.RawMessage `json:"value,omitempty"`
	// Err is the wire encoding of the cell's error.
	Err string `json:"err,omitempty"`
	// Canceled marks wire errors that were context cancellations, so the
	// coordinator's collateral-error logic still recognizes them.
	Canceled bool `json:"canceled,omitempty"`
	// ElapsedUS is the cell's wall-clock time in microseconds.
	ElapsedUS int64 `json:"elapsed_us,omitempty"`

	value    any   // in-process value; used when hasValue is set
	hasValue bool  // distinguishes a live value from a wire Value
	err      error // in-process error; takes precedence over Err
}

// CellErr returns the cell's error in its most faithful available form:
// the live error for in-process results, a wireError (which preserves
// errors.Is(err, context.Canceled)) for wire results, nil otherwise.
func (r *CellResult) CellErr() error {
	if r.err != nil {
		return r.err
	}
	if r.Err != "" {
		return &wireError{msg: r.Err, canceled: r.Canceled}
	}
	return nil
}

// encodeWire converts an in-process result into its wire form, JSON-
// encoding the live value and stringifying the live error. Workers call
// it before results leave the process.
func (r *CellResult) encodeWire() {
	if r.err != nil {
		r.Err = r.err.Error()
		r.Canceled = errors.Is(r.err, context.Canceled)
		r.err = nil
	} else if r.hasValue {
		b, err := json.Marshal(r.value)
		if err != nil {
			r.Err = fmt.Sprintf("unencodable cell result %T: %v", r.value, err)
		} else {
			r.Value = b
		}
	}
	r.value, r.hasValue = nil, false
}

// wireError is a cell error reconstituted from its wire form.
type wireError struct {
	msg      string
	canceled bool
}

func (e *wireError) Error() string { return e.msg }

// Is lets errors.Is(err, context.Canceled) see through the wire encoding.
func (e *wireError) Is(target error) bool {
	return e.canceled && target == context.Canceled
}

// decodeInto places a result's value into dst, preferring the live value.
func decodeInto[T any](r *CellResult, dst *T) error {
	if r.hasValue {
		v, ok := r.value.(T)
		if !ok {
			return fmt.Errorf("cell result is %T, want %T", r.value, *dst)
		}
		*dst = v
		return nil
	}
	if len(r.Value) == 0 {
		return errors.New("cell result carries no value")
	}
	return json.Unmarshal(r.Value, dst)
}

// ErrPermanent marks batch-level errors that are deterministic
// properties of the cells themselves — a scenario whose decomposition
// disagrees with the coordinator's, unencodable params — rather than of
// the transport or the worker that ran them. Routers must not requeue a
// batch that failed permanently: every backend would fail it the same
// way, so retrying only multiplies the failure across the fleet.
// Capability mismatches (a wire backend refusing anonymous cells, a
// worker missing a scenario registration) are NOT permanent — a
// differently-capable backend may still execute the batch.
var ErrPermanent = errors.New("harness: permanent batch failure")

// Permanent wraps err so errors.Is(err, ErrPermanent) reports true while
// the original error text and chain stay visible.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

func (e *permanentError) Unwrap() error { return e.err }

// Is lets errors.Is see the permanence marker without a sentinel chain.
func (e *permanentError) Is(target error) bool { return target == ErrPermanent }

// Backend executes batches of cells. Run returns one CellResult per spec
// (any order; Map merges by shard). Per-cell failures are reported inside
// the results; a non-nil error means the batch as a whole could not be
// executed (transport failure, dead worker) and is what MultiBackend
// retries on another backend — unless it is marked Permanent, in which
// case retrying is pointless and routers fail fast. If any cell fails,
// Run may stop early and return results only for the cells it attempted.
type Backend interface {
	// Name labels the backend in stats and observer cells.
	Name() string
	// Run executes the batch.
	Run(ctx context.Context, specs []CellSpec) ([]CellResult, error)
	// Close releases backend resources (subprocesses, connections).
	Close() error
}

// BackendStats is one backend's run accounting, reported in the suite
// JSON document.
type BackendStats struct {
	Backend string `json:"backend"`
	// Cells is how many cells the backend completed (including failed).
	Cells uint64 `json:"cells"`
	// Retries is how many cells were requeued after a failure: onto
	// another backend when this backend failed a batch (MultiBackend), or
	// onto another worker of the same fleet (RemoteBackend).
	Retries uint64 `json:"retries"`
	// WallMS is the cumulative wall-clock time spent inside Run.
	WallMS int64 `json:"wall_ms"`
	// Joins/Leaves count fleet membership changes over the run; only a
	// RemoteBackend, whose workers come and go, reports them.
	Joins  uint64 `json:"joins,omitempty"`
	Leaves uint64 `json:"leaves,omitempty"`
	// WireJSONBytes/WireBinaryBytes count frame payload bytes moved over
	// the backend's wire (both directions, handshakes included) per
	// codec; only wire backends (exec, remote) report them. A mixed
	// fleet — some workers negotiated the binary codec, some fell back
	// to JSON — reports both.
	WireJSONBytes   uint64 `json:"wire_json_bytes,omitempty"`
	WireBinaryBytes uint64 `json:"wire_binary_bytes,omitempty"`
	// Workers itemizes a RemoteBackend's fleet, one entry per worker that
	// ever joined (in join order, departed workers included).
	Workers []WorkerStats `json:"workers,omitempty"`
}

// WorkerStats is one fleet worker's accounting inside BackendStats.
type WorkerStats struct {
	// Worker is the worker's self-reported name suffixed with its join
	// index, unique within the fleet.
	Worker string `json:"worker"`
	// Cells is how many of this worker's cell results were accepted.
	Cells uint64 `json:"cells"`
	// Steals counts speculative chunk re-executions by this worker that
	// beat the original straggler to at least one cell.
	Steals uint64 `json:"steals,omitempty"`
	// Speculative counts cells this worker executed whose results were
	// discarded because another copy had already been accepted.
	Speculative uint64 `json:"speculative,omitempty"`
	// AffinityHits/AffinityMisses count non-speculative chunk dispatches
	// with a locality key that did (hit) or did not (miss) land on the
	// key's preferred worker — lastServed if alive, else the rendezvous
	// choice. Misses are the load-aware fallback keeping idle workers
	// fed; chunks without a locality key count as neither.
	AffinityHits   uint64 `json:"affinity_hits,omitempty"`
	AffinityMisses uint64 `json:"affinity_misses,omitempty"`
}

// StatsReporter is implemented by backends that track BackendStats;
// MultiBackend flattens its children's reports.
type StatsReporter interface {
	BackendStats() []BackendStats
}

// cellNotify is the pool-side completion callback: the observer-facing
// Cell plus the spec and result that feed the pool's Sink (run
// journal). Pool.complete implements it.
type cellNotify func(c Cell, spec CellSpec, res CellResult)

// cellSink is implemented by backends that can stream completed cells to
// the pool's observer and sink; Pool.SetBackend wires it. A backend must
// not report cells from a batch whose Run returns an error — a router
// will requeue that batch elsewhere, and early reports would
// double-count the cells in Pool.Cells().
type cellSink interface {
	setSink(cellNotify)
}

// LocalBackend is the in-process goroutine pool — the execution engine
// Map used directly before backends existed, now behind the interface.
// It requires in-process specs (fn set); it never looks at the registry.
type LocalBackend struct {
	workers int
	sink    atomic.Pointer[cellNotify]
	cells   atomic.Uint64
	wallNS  atomic.Int64
}

// NewLocalBackend returns a backend running up to workers cells
// concurrently (<= 0 means GOMAXPROCS).
func NewLocalBackend(workers int) *LocalBackend {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &LocalBackend{workers: workers}
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return "local" }

// Close implements Backend; a LocalBackend holds no resources.
func (b *LocalBackend) Close() error { return nil }

func (b *LocalBackend) setSink(fn cellNotify) { b.sink.Store(&fn) }

func (b *LocalBackend) notify(c Cell, spec CellSpec, res CellResult) {
	if fn := b.sink.Load(); fn != nil && *fn != nil {
		(*fn)(c, spec, res)
	}
}

// BackendStats implements StatsReporter.
func (b *LocalBackend) BackendStats() []BackendStats {
	return []BackendStats{{
		Backend: b.Name(),
		Cells:   b.cells.Load(),
		WallMS:  time.Duration(b.wallNS.Load()).Milliseconds(),
	}}
}

// Run implements Backend: specs execute on up to b.workers goroutines.
// The first cell error stops scheduling of further cells; results for
// unattempted cells are omitted.
func (b *LocalBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	start := time.Now()
	defer func() { b.wallNS.Add(int64(time.Since(start))) }()

	results := make([]CellResult, len(specs))
	attempted := make([]bool, len(specs))
	runCell := func(ctx context.Context, i int) error {
		s := specs[i]
		if s.fn == nil {
			// Recorded as the cell's result (not just returned) so the
			// diagnosis reaches Map instead of decaying into a generic
			// missing-shard error.
			err := fmt.Errorf("harness: local backend got a wire-only spec for %s/%d (no cell function)", s.Scope, s.Shard)
			results[i] = CellResult{Shard: s.Shard, err: err}
			attempted[i] = true
			return err
		}
		cellStart := time.Now()
		v, err := s.fn(ctx, s.Shard, s.Seed)
		elapsed := time.Since(cellStart)
		results[i] = CellResult{
			Shard: s.Shard, value: v, hasValue: err == nil, err: err,
			ElapsedUS: elapsed.Microseconds(),
		}
		attempted[i] = true
		b.cells.Add(1)
		b.notify(Cell{Backend: b.Name(), Scope: s.Scope, Shard: s.Shard, Seed: s.Seed, Elapsed: elapsed, Err: err}, s, results[i])
		return err
	}

	workers := b.workers
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			if err := ctx.Err(); err != nil {
				return compact(results, attempted), nil
			}
			if runCell(ctx, i) != nil {
				break
			}
		}
		return compact(results, attempted), nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range specs {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				if runCell(ctx, i) != nil {
					cancel() // stop handing out further cells
				}
			}
		}()
	}
	wg.Wait()
	return compact(results, attempted), nil
}

// compact drops the slots of unattempted cells.
func compact(results []CellResult, attempted []bool) []CellResult {
	out := results[:0]
	for i := range results {
		if attempted[i] {
			out = append(out, results[i])
		}
	}
	return out
}

// WeightedBackend pairs a backend with its share of the work.
type WeightedBackend struct {
	Backend Backend
	// Weight is the backend's relative share of batch chunks (<= 0 is
	// treated as 1).
	Weight int
}

// MultiBackend fans batches out across several backends by weighted
// round-robin, requeueing a chunk onto the next backend when one fails
// it at the transport level (Permanent failures propagate immediately
// instead — see ErrPermanent). Results merge back into shard order, so
// output is bit-identical regardless of which backend ran which cell.
type MultiBackend struct {
	entries []WeightedBackend
	ring    []int // entry indices expanded by weight
	next    atomic.Uint64
	retries []atomic.Uint64 // per entry: cells requeued after it failed
}

// NewMultiBackend builds the router; it panics on an empty entry list so
// misconfiguration surfaces at construction.
func NewMultiBackend(entries ...WeightedBackend) *MultiBackend {
	if len(entries) == 0 {
		panic("harness: NewMultiBackend with no backends")
	}
	m := &MultiBackend{entries: entries, retries: make([]atomic.Uint64, len(entries))}
	for i, e := range entries {
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		for j := 0; j < w; j++ {
			m.ring = append(m.ring, i)
		}
	}
	return m
}

// Name implements Backend.
func (m *MultiBackend) Name() string { return "multi" }

// Close closes every child backend, returning the first error.
func (m *MultiBackend) Close() error {
	var first error
	for _, e := range m.entries {
		if err := e.Backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// setSink forwards the pool's observer sink to every child that streams.
func (m *MultiBackend) setSink(fn cellNotify) {
	for _, e := range m.entries {
		if s, ok := e.Backend.(cellSink); ok {
			s.setSink(fn)
		}
	}
}

// BackendStats flattens the children's reports, attributing each child's
// requeue count to the backend that failed.
func (m *MultiBackend) BackendStats() []BackendStats {
	var out []BackendStats
	for i, e := range m.entries {
		var stats []BackendStats
		if sr, ok := e.Backend.(StatsReporter); ok {
			stats = sr.BackendStats()
		} else {
			stats = []BackendStats{{Backend: e.Backend.Name()}}
		}
		if len(stats) > 0 {
			stats[0].Retries += m.retries[i].Load()
		}
		out = append(out, stats...)
	}
	return out
}

// multiChunkCells bounds chunk size so every backend in the ring sees
// work even on small batches.
const multiChunkTarget = 4

// Run implements Backend: the batch splits into chunks assigned to
// backends by weighted round-robin; a chunk whose backend fails is
// requeued onto the next backend in the ring until one succeeds or all
// have failed it.
func (m *MultiBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}

	chunkSize := (len(specs) + len(m.ring)*multiChunkTarget - 1) / (len(m.ring) * multiChunkTarget)
	if chunkSize < 1 {
		chunkSize = 1
	}
	type chunk struct {
		specs []CellSpec
		entry int // first entry index to try
	}
	var chunks []chunk
	for off := 0; off < len(specs); off += chunkSize {
		end := off + chunkSize
		if end > len(specs) {
			end = len(specs)
		}
		slot := m.next.Add(1) - 1
		chunks = append(chunks, chunk{
			specs: specs[off:end],
			entry: m.ring[slot%uint64(len(m.ring))],
		})
	}

	var (
		mu      sync.Mutex
		merged  []CellResult
		firstEr error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c chunk) {
			defer wg.Done()
			var lastErr error
			for attempt := 0; attempt < len(m.entries); attempt++ {
				if ctx.Err() != nil {
					lastErr = ctx.Err()
					break
				}
				idx := (c.entry + attempt) % len(m.entries)
				res, err := m.entries[idx].Backend.Run(ctx, c.specs)
				if err == nil {
					mu.Lock()
					merged = append(merged, res...)
					mu.Unlock()
					return
				}
				lastErr = fmt.Errorf("backend %s: %w", m.entries[idx].Backend.Name(), err)
				if errors.Is(err, ErrPermanent) {
					// A deterministic cell/scenario failure would repeat
					// identically on every backend: propagate immediately
					// instead of retrying it across the whole ring.
					break
				}
				// Requeue: charge the failed backend for every cell that
				// now has to run elsewhere.
				m.retries[idx].Add(uint64(len(c.specs)))
			}
			mu.Lock()
			if firstEr == nil {
				firstEr = lastErr
			}
			mu.Unlock()
			cancel()
		}(c)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	sortResultsByShard(merged)
	return merged, nil
}

// sortResultsByShard orders results canonically. The input is whole
// chunks concatenated in completion order — sorted within a chunk but
// arbitrarily interleaved across chunks — so this must not assume
// nearly-sorted data.
func sortResultsByShard(rs []CellResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Shard < rs[j].Shard })
}
