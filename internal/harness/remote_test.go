package harness

// Chaos-style tests for the elastic RemoteBackend fleet. The hard
// invariant under test everywhere: results are byte-identical to the
// in-process run at any fleet shape — workers joining late, dying
// mid-chunk (kill -9), straggling into speculative re-execution, or
// answering batch errors.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const remoteAddrEnvVar = "STBPU_HARNESS_TEST_ADDR"

// permanentBackend fails every chunk with a deterministic (Permanent)
// error, counting how often routers nonetheless come back.
type permanentBackend struct{ calls atomic.Int64 }

func (p *permanentBackend) Name() string { return "perm" }
func (p *permanentBackend) Run(ctx context.Context, specs []CellSpec) ([]CellResult, error) {
	p.calls.Add(1)
	return nil, Permanent(errors.New("deterministic scenario bug"))
}
func (p *permanentBackend) Close() error { return nil }

// remoteWedgeWorkerMain is the TestMain body for the remote-wedge
// worker mode: handshake, take one chunk, print a marker, keep
// heartbeating, and wait for the SIGKILL the test aims at us.
func remoteWedgeWorkerMain() {
	conn, err := net.Dial("tcp", os.Getenv(remoteAddrEnvVar))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wedge worker:", err)
		os.Exit(1)
	}
	var wmu sync.Mutex
	if err := writeFrame(conn, remoteHello{Proto: remoteProtoVersion, Name: "wedge"}); err != nil {
		os.Exit(1)
	}
	var welcome remoteWelcome
	if err := readFrame(conn, &welcome); err != nil {
		os.Exit(1)
	}
	go func() {
		for {
			time.Sleep(time.Duration(welcome.HeartbeatMS) * time.Millisecond)
			wmu.Lock()
			err := writeFrame(conn, remoteReply{Type: "heartbeat"})
			wmu.Unlock()
			if err != nil {
				os.Exit(1)
			}
		}
	}()
	var work remoteWork
	if err := readFrame(conn, &work); err != nil {
		os.Exit(1)
	}
	fmt.Printf("WEDGED %d\n", len(work.Cells))
	select {}
}

// startRemote binds a backend (closing it on cleanup) and returns the
// coordinator address workers should dial.
func startRemote(t *testing.T, b *RemoteBackend) string {
	t.Helper()
	addr, err := b.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return addr.String()
}

// startInProcWorker serves the fleet protocol from a goroutine in this
// process (sharing the test registry), stopping on test cleanup.
func startInProcWorker(t *testing.T, addr string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ServeRemoteWorker(ctx, addr, WorkerOptions{Workers: 1})
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// dialScriptedWorker handshakes a hand-rolled worker connection for
// tests that need protocol-level misbehavior, returning the conn and
// the welcome. The conn closes on cleanup.
func dialScriptedWorker(t *testing.T, addr, name string) (net.Conn, remoteWelcome) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := writeFrame(conn, remoteHello{Proto: remoteProtoVersion, Name: name}); err != nil {
		t.Fatal(err)
	}
	var welcome remoteWelcome
	if err := readFrame(conn, &welcome); err != nil {
		t.Fatal(err)
	}
	return conn, welcome
}

func reportBytes(t *testing.T, reports []Report) []byte {
	t.Helper()
	b, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fleetStats(t *testing.T, b *RemoteBackend) BackendStats {
	t.Helper()
	stats := b.BackendStats()
	if len(stats) != 1 || stats[0].Backend != "remote" {
		t.Fatalf("fleet stats implausible: %+v", stats)
	}
	return stats[0]
}

// TestRemoteBackendMatchesLocal is the fleet determinism gate: the same
// scenario on two TCP workers must marshal byte-identically to the
// in-process run, with every cell accounted to exactly one worker.
func TestRemoteBackendMatchesLocal(t *testing.T) {
	local := runWire(t, NewPool(2, 1234))

	b := &RemoteBackend{}
	addr := startRemote(t, b)
	startInProcWorker(t, addr)
	startInProcWorker(t, addr)
	pool := NewPool(2, 1234)
	pool.SetBackend(b)
	remote := runWire(t, pool)

	if !bytes.Equal(reportBytes(t, local), reportBytes(t, remote)) {
		t.Errorf("remote fleet results diverge from local:\nlocal:  %s\nremote: %s",
			reportBytes(t, local), reportBytes(t, remote))
	}
	st := fleetStats(t, b)
	if st.Joins != 2 || st.Cells == 0 {
		t.Errorf("fleet stats: joins=%d cells=%d, want 2 joins and nonzero cells", st.Joins, st.Cells)
	}
	var sum uint64
	for _, w := range st.Workers {
		sum += w.Cells
	}
	if sum != st.Cells {
		t.Errorf("per-worker cells sum %d != fleet total %d", sum, st.Cells)
	}
}

// TestRemoteBackendLateJoin: a Run launched against an empty fleet must
// sit in the join grace window and complete bit-identically once a
// worker finally dials in — the elasticity the fleet exists for.
func TestRemoteBackendLateJoin(t *testing.T) {
	local := runWire(t, NewPool(2, 77))

	b := &RemoteBackend{}
	addr := startRemote(t, b)
	pool := NewPool(2, 77)
	pool.SetBackend(b)

	type outcome struct {
		reports []Report
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-wire"}})
		done <- outcome{reports, err}
	}()

	// Join one worker once the run is already pending, and a second one
	// later still — the fleet must absorb both without disturbing bytes.
	time.Sleep(100 * time.Millisecond)
	startInProcWorker(t, addr)
	time.Sleep(50 * time.Millisecond)
	startInProcWorker(t, addr)

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !bytes.Equal(reportBytes(t, local), reportBytes(t, o.reports)) {
			t.Error("late-join fleet results diverge from local")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never completed after workers joined")
	}
	// The first worker joined a pending run; the second may only have
	// finished its handshake after the (tiny) run drained — poll.
	deadline := time.After(10 * time.Second)
	for fleetStats(t, b).Joins != 2 {
		select {
		case <-deadline:
			t.Fatalf("joins = %d, want 2", fleetStats(t, b).Joins)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestRemoteBackendWorkerKilledMidChunk is the kill -9 chaos gate: a
// subprocess worker takes a chunk, the test SIGKILLs it mid-execution,
// and the chunk must requeue onto a replacement worker with the final
// bytes identical to local.
func TestRemoteBackendWorkerKilledMidChunk(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess workers")
	}
	local := runWire(t, NewPool(2, 4321))

	b := &RemoteBackend{
		// Generous straggler floor so the kill path, not speculation, is
		// what re-executes the dead worker's chunk.
		MinStragglerAge: time.Minute,
	}
	addr := startRemote(t, b)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerEnvVar+"=remote-wedge", remoteAddrEnvVar+"="+addr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	pool := NewPool(2, 4321)
	pool.SetBackend(b)
	type outcome struct {
		reports []Report
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		reports, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-wire"}})
		done <- outcome{reports, err}
	}()

	// Wait until the subprocess holds a chunk, then kill -9 it.
	marker, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil || !strings.HasPrefix(marker, "WEDGED") {
		t.Fatalf("wedge worker never reported a chunk: %q, %v", marker, err)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	startInProcWorker(t, addr)

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !bytes.Equal(reportBytes(t, local), reportBytes(t, o.reports)) {
			t.Error("killed-worker fleet results diverge from local")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run hung after the worker was killed")
	}
	st := fleetStats(t, b)
	if st.Leaves == 0 || st.Retries == 0 {
		t.Errorf("kill left no trace in stats: leaves=%d retries=%d", st.Leaves, st.Retries)
	}
}

// TestRemoteBackendSpeculativeReexecution forces the straggler path: a
// scripted worker sits on its chunk far past the straggler threshold
// while an idle fast worker speculatively re-runs it. First result
// wins, the straggler's eventual duplicates are discarded, and the
// bytes still match local exactly.
func TestRemoteBackendSpeculativeReexecution(t *testing.T) {
	local := runWire(t, NewPool(2, 555))

	b := &RemoteBackend{MinStragglerAge: 50 * time.Millisecond}
	addr := startRemote(t, b)

	// The slow worker executes chunks correctly but delays every reply,
	// guaranteeing it straggles (and that its replies arrive as
	// duplicates of already-accepted speculative results).
	slowConn, _ := dialScriptedWorker(t, addr, "slow")
	slowStop := make(chan struct{})
	t.Cleanup(func() { close(slowStop) })
	go func() {
		for {
			var work remoteWork
			if readFrame(slowConn, &work) != nil {
				return
			}
			results, err := ExecuteCells(context.Background(), work.Cells, 1, nil)
			select {
			case <-time.After(800 * time.Millisecond):
			case <-slowStop:
				return
			}
			reply := remoteReply{Type: "results", Seq: work.Seq, Results: results}
			if err != nil {
				reply = remoteReply{Type: "results", Seq: work.Seq, Err: err.Error()}
			}
			if writeFrame(slowConn, reply) != nil {
				return
			}
		}
	}()
	startInProcWorker(t, addr)

	pool := NewPool(2, 555)
	pool.SetBackend(b)
	remote := runWire(t, pool)
	if !bytes.Equal(reportBytes(t, local), reportBytes(t, remote)) {
		t.Error("speculative fleet results diverge from local")
	}

	stealSum := func() (steals uint64) {
		for _, w := range fleetStats(t, b).Workers {
			steals += w.Steals
		}
		return
	}
	if stealSum() == 0 {
		t.Error("run completed without a single speculative steal; the straggler path never fired")
	}
	// The straggler's late replies eventually land as discarded
	// duplicates; give them a moment to be counted.
	deadline := time.After(10 * time.Second)
	for {
		var spec uint64
		for _, w := range fleetStats(t, b).Workers {
			spec += w.Speculative
		}
		if spec > 0 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("straggler duplicates were never recorded as speculative waste")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestRemoteBackendHeartbeatTimeout: a worker that goes silent (no
// heartbeats, no results) while holding a chunk must be declared dead
// after the heartbeat timeout and its chunk requeued.
func TestRemoteBackendHeartbeatTimeout(t *testing.T) {
	local := runWire(t, NewPool(2, 99))

	b := &RemoteBackend{
		HeartbeatTimeout: 300 * time.Millisecond,
		// Again: force the liveness path, not speculation.
		MinStragglerAge: time.Minute,
	}
	addr := startRemote(t, b)

	// The silent worker accepts chunks and then says nothing at all.
	silentConn, _ := dialScriptedWorker(t, addr, "silent")
	go func() {
		for {
			var work remoteWork
			if readFrame(silentConn, &work) != nil {
				return
			}
		}
	}()
	startInProcWorker(t, addr)

	pool := NewPool(2, 99)
	pool.SetBackend(b)
	remote := runWire(t, pool)
	if !bytes.Equal(reportBytes(t, local), reportBytes(t, remote)) {
		t.Error("silent-worker fleet results diverge from local")
	}
	st := fleetStats(t, b)
	if st.Leaves == 0 {
		t.Errorf("silent worker was never declared dead: %+v", st)
	}
}

// TestRemoteBackendTransientWorkerErrorRequeues: a worker replying a
// non-permanent batch error stays in the fleet and the chunk requeues
// (most likely elsewhere) rather than failing the run.
func TestRemoteBackendTransientWorkerErrorRequeues(t *testing.T) {
	local := runWire(t, NewPool(2, 11))

	b := &RemoteBackend{MinStragglerAge: time.Minute}
	addr := startRemote(t, b)

	// The grumpy worker rejects its first chunk with a transient error,
	// then behaves.
	conn, _ := dialScriptedWorker(t, addr, "grumpy")
	go func() {
		rejected := false
		for {
			var work remoteWork
			if readFrame(conn, &work) != nil {
				return
			}
			if !rejected {
				rejected = true
				if writeFrame(conn, remoteReply{Type: "results", Seq: work.Seq, Err: "scenario not on this build"}) != nil {
					return
				}
				continue
			}
			results, err := ExecuteCells(context.Background(), work.Cells, 1, nil)
			reply := remoteReply{Type: "results", Seq: work.Seq, Results: results}
			if err != nil {
				reply = remoteReply{Type: "results", Seq: work.Seq, Err: err.Error()}
			}
			if writeFrame(conn, reply) != nil {
				return
			}
		}
	}()
	startInProcWorker(t, addr)

	pool := NewPool(2, 11)
	pool.SetBackend(b)
	remote := runWire(t, pool)
	if !bytes.Equal(reportBytes(t, local), reportBytes(t, remote)) {
		t.Error("transient-error fleet results diverge from local")
	}
	st := fleetStats(t, b)
	if st.Retries == 0 {
		t.Error("rejected chunk was not requeued")
	}
	if st.Leaves != 0 {
		t.Errorf("transient error evicted the worker: %+v", st)
	}
}

// TestRemoteBackendPermanentWorkerErrorFailsRun: a worker flagging its
// batch error permanent (a deterministic scenario bug that would repeat
// identically anywhere) must fail the run immediately, not ricochet
// around the fleet.
func TestRemoteBackendPermanentWorkerErrorFailsRun(t *testing.T) {
	b := &RemoteBackend{MinStragglerAge: time.Minute}
	addr := startRemote(t, b)
	conn, _ := dialScriptedWorker(t, addr, "perm")
	go func() {
		for {
			var work remoteWork
			if readFrame(conn, &work) != nil {
				return
			}
			if writeFrame(conn, remoteReply{
				Type: "results", Seq: work.Seq,
				Err: "cell space mismatch", Permanent: true,
			}) != nil {
				return
			}
		}
	}()

	specs := []CellSpec{{Scenario: "_exec-wire", Scope: "_exec-wire", Shard: 0, Params: Params{Trials: 1}}}
	_, err := b.Run(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "cell space mismatch") {
		t.Fatalf("err = %v, want the worker's permanent error", err)
	}
	if !errors.Is(err, ErrPermanent) {
		t.Errorf("permanent flag lost across the wire: %v", err)
	}
	if st := fleetStats(t, b); st.Retries != 0 {
		t.Errorf("permanent error was requeued %d times", st.Retries)
	}
}

// TestRemoteBackendFailsWithoutWorkers: an empty fleet must fail the
// run after the join grace with a diagnosable message, not hang.
func TestRemoteBackendFailsWithoutWorkers(t *testing.T) {
	b := &RemoteBackend{JoinGrace: 200 * time.Millisecond}
	startRemote(t, b)
	specs := []CellSpec{{Scenario: "_exec-wire", Scope: "_exec-wire", Shard: 0}}
	start := time.Now()
	_, err := b.Run(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "no workers") {
		t.Fatalf("err = %v, want the empty-fleet diagnosis", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("join grace failure took far longer than configured")
	}
}

// TestMultiBackendPermanentErrorNotRetried: a backend failing a chunk
// with a Permanent error must surface it immediately instead of
// retrying the doomed chunk across the rest of the ring.
func TestMultiBackendPermanentErrorNotRetried(t *testing.T) {
	perm := &permanentBackend{}
	m := NewMultiBackend(
		WeightedBackend{Backend: perm, Weight: 1},
		WeightedBackend{Backend: NewLocalBackend(1), Weight: 1},
	)
	defer m.Close()
	pool := NewPool(2, 7)
	pool.SetBackend(m)
	_, err := RunAll(context.Background(), pool, Options{Filters: []string{"_exec-wire"}})
	if err == nil || !strings.Contains(err.Error(), "deterministic scenario bug") {
		t.Fatalf("err = %v, want the permanent failure", err)
	}
	if !errors.Is(err, ErrPermanent) {
		t.Errorf("permanent marker lost through MultiBackend: %v", err)
	}
	if calls := perm.calls.Load(); calls != 1 {
		t.Errorf("permanent backend was called %d times, want exactly 1", calls)
	}
	for _, st := range m.BackendStats() {
		if st.Retries != 0 {
			t.Errorf("backend %s recorded %d retries for a permanent failure", st.Backend, st.Retries)
		}
	}
}
