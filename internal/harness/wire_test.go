package harness

import (
	"encoding/json"
	"reflect"
	"testing"
)

// wireTestSpecs builds a representative trace-major batch: n cells
// across a handful of workloads with populated params, sweeps, and
// locality keys, the shape the suite actually ships to workers.
func wireTestSpecs(n int) []CellSpec {
	workloads := []string{"505.mcf", "531.deepsjeng", "541.leela", "557.xz"}
	specs := make([]CellSpec, n)
	for i := range specs {
		wl := workloads[i%len(workloads)]
		specs[i] = CellSpec{
			Scenario: "tab3_attacks",
			Scope:    "pairs",
			Shard:    i,
			Seed:     ShardSeed(0x5eed, "pairs", i),
			RootSeed: 0x5eed,
			Locality: Locality(wl, 20000),
			Params: Params{
				Records:      20000,
				MaxWorkloads: 8,
				MaxPairs:     12,
				Trials:       40,
				Budget:       4096,
				Bits:         64,
				R:            1.25,
				Sweep:        []float64{0.5, 1, 1.5, 2, 2.5},
				Workload:     wl,
				WorkloadSpec: "spec:browser_tabbed@deadbeef",
			},
		}
	}
	return specs
}

func TestWireMsgRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		msg  wireMsg
	}{
		{"work", wireMsg{
			kind:     wireKindWork,
			seq:      42,
			cells:    wireTestSpecs(5),
			prefetch: []string{"505.mcf@20000", "541.leela@20000"},
		}},
		{"work-empty", wireMsg{kind: wireKindWork, seq: 7}},
		{"results", wireMsg{
			kind: wireKindResults,
			seq:  42,
			results: []CellResult{
				{Shard: 0, Value: json.RawMessage(`{"leak":0.25}`), ElapsedUS: 1234},
				{Shard: 1, Err: "replay diverged", Canceled: true},
				{Shard: 2},
			},
		}},
		{"results-batch-error", wireMsg{
			kind:      wireKindResults,
			seq:       9,
			err:       "trace store unavailable",
			permanent: true,
		}},
		{"heartbeat", wireMsg{kind: wireKindHeartbeat, seq: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload := encodeWireMsg(&tc.msg)
			if len(payload) == 0 || payload[0] != binMagic {
				t.Fatalf("payload does not start with the binary magic byte: % x", payload[:min(len(payload), 4)])
			}
			got, err := decodeWireMsg(payload)
			if err != nil {
				t.Fatalf("decodeWireMsg: %v", err)
			}
			if !reflect.DeepEqual(*got, tc.msg) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, tc.msg)
			}
		})
	}
}

func TestWireMsgDecodeErrors(t *testing.T) {
	good := encodeWireMsg(&wireMsg{kind: wireKindWork, seq: 1, cells: wireTestSpecs(1)})
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"short", []byte{binMagic, binVersion}},
		{"json-not-binary", []byte(`{"seq":1,"cells":[]}`)},
		{"bad-magic", append([]byte{0x00}, good[1:]...)},
		{"bad-version", append([]byte{binMagic, binVersion + 1}, good[2:]...)},
		{"unknown-kind", []byte{binMagic, binVersion, 0x7f, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"trailing-bytes", append(append([]byte(nil), good...), 0xff)},
		{"truncated-body", good[:len(good)-3]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeWireMsg(tc.payload); err == nil {
				t.Fatalf("decodeWireMsg accepted a corrupt payload")
			}
		})
	}
}

func TestWireOfferAndNegotiate(t *testing.T) {
	if got := wireOffer(""); len(got) != 1 || got[0] != wireCodecBinary {
		t.Fatalf("wireOffer(\"\") = %v, want [%s]", got, wireCodecBinary)
	}
	if got := wireOffer(wireForceJSON); got != nil {
		t.Fatalf("wireOffer(json) = %v, want nil", got)
	}
	cases := []struct {
		offered []string
		wire    string
		want    string
	}{
		{[]string{wireCodecBinary}, "", wireCodecBinary},
		{[]string{"future9", wireCodecBinary}, "", wireCodecBinary},
		{[]string{"future9"}, "", ""},
		{nil, "", ""},
		{[]string{wireCodecBinary}, wireForceJSON, ""},
	}
	for _, tc := range cases {
		if got := negotiateCodec(tc.offered, tc.wire); got != tc.want {
			t.Fatalf("negotiateCodec(%v, %q) = %q, want %q", tc.offered, tc.wire, got, tc.want)
		}
	}
}

// The benchmarks measure one dispatch round trip for a representative
// 64-cell trace-major batch: coordinator-side encode plus worker-side
// decode, the work the wire adds to every chunk. The binary codec must
// beat JSON by a wide margin (the bench gate records both).

func benchWorkMsg() *wireMsg {
	return &wireMsg{
		kind:     wireKindWork,
		seq:      17,
		cells:    wireTestSpecs(64),
		prefetch: []string{"531.deepsjeng@20000", "557.xz@20000"},
	}
}

func BenchmarkWireSpecsJSON(b *testing.B) {
	msg := benchWorkMsg()
	work := remoteWork{Seq: msg.seq, Cells: msg.cells, Prefetch: msg.prefetch}
	payload, err := json.Marshal(&work)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := json.Marshal(&work)
		if err != nil {
			b.Fatal(err)
		}
		var got remoteWork
		if err := json.Unmarshal(p, &got); err != nil {
			b.Fatal(err)
		}
		if len(got.Cells) != len(work.Cells) {
			b.Fatal("lost cells in transit")
		}
	}
}

func BenchmarkWireSpecsBinary(b *testing.B) {
	msg := benchWorkMsg()
	payload := encodeWireMsg(msg)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := encodeWireMsg(msg)
		got, err := decodeWireMsg(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(got.cells) != len(msg.cells) {
			b.Fatal("lost cells in transit")
		}
	}
}
