package stbpu

import (
	"bytes"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	tr, err := GenerateWorkload("505.mcf", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	protected := NewProtected(Config{Predictor: TAGE8, Seed: 1})
	baseline := NewUnprotected(TAGE8)
	p := Simulate(protected, tr)
	b := Simulate(baseline, tr)
	if p.OAE() < b.OAE()-0.03 {
		t.Errorf("protected OAE %.3f vs baseline %.3f", p.OAE(), b.OAE())
	}
}

func TestWorkloadsListed(t *testing.T) {
	names := Workloads()
	if len(names) < 30 {
		t.Errorf("only %d workloads", len(names))
	}
	for _, n := range names {
		if _, err := GenerateWorkload(n, 1_000); err != nil {
			t.Errorf("workload %s: %v", n, err)
		}
	}
}

func TestDeriveThresholdsExposed(t *testing.T) {
	th := DeriveThresholds(0.05)
	if th.Mispredictions != 41_900 || th.Evictions != 26_500 {
		t.Errorf("thresholds %+v", th)
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	if _, err := GenerateWorkload("no-such-workload", 100); err == nil {
		t.Error("expected error")
	}
}

func TestFacadeDefenses(t *testing.T) {
	for _, d := range []Defense{BRB, BSUP, ZhaoDAC21, ExynosXOR} {
		m := NewDefense(d, 1)
		tr, err := GenerateWorkload("505.mcf", 2_000)
		if err != nil {
			t.Fatal(err)
		}
		res := Simulate(m, tr)
		if res.Records != 2_000 {
			t.Errorf("%v: records = %d", d, res.Records)
		}
		if res.OAE() <= 0.3 {
			t.Errorf("%v: OAE %.3f unreasonably low", d, res.OAE())
		}
	}
}

func TestFacadeProtections(t *testing.T) {
	tr, err := GenerateWorkload("541.leela", 3_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protection{Baseline, Ucode1, Ucode2, Conservative, STBPU} {
		m := NewProtection(p, Config{Seed: 3})
		if res := Simulate(m, tr); res.Records != 3_000 {
			t.Errorf("%v: records = %d", p, res.Records)
		}
	}
}

func TestFacadeITTAGE(t *testing.T) {
	tr, err := GenerateWorkload("chrome-1jetstream", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	m := NewProtectedITTAGE(Config{Seed: 3})
	res := Simulate(m, tr)
	if res.TargetRate() <= 0.5 {
		t.Errorf("ITTAGE-backed model target rate %.3f too low", res.TargetRate())
	}
}

func TestFacadeTraceFormats(t *testing.T) {
	tr, err := GenerateWorkload("505.mcf", 4_000)
	if err != nil {
		t.Fatal(err)
	}
	var stbt, stpt bytes.Buffer
	if err := WriteTrace(&stbt, tr); err != nil {
		t.Fatal(err)
	}
	stats, err := WriteTracePT(&stpt, tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 4_000 {
		t.Errorf("PT stats records = %d", stats.Records)
	}
	a, err := ReadTrace(&stbt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadTracePT(&stpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("format disagreement: %d vs %d records", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between formats", i)
		}
	}
	// Both formats must drive the simulator to identical results.
	r1 := Simulate(NewProtected(Config{Seed: 9}), a)
	r2 := Simulate(NewProtected(Config{Seed: 9}), b)
	if r1.Mispredicts != r2.Mispredicts || r1.OAE() != r2.OAE() {
		t.Error("simulation results differ across trace formats")
	}
}

func TestSimulateMany(t *testing.T) {
	tr, err := GenerateWorkload("505.mcf", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	var runs []Run
	for i := 0; i < 8; i++ {
		seed := uint64(i + 1)
		runs = append(runs, Run{
			Name:     "run",
			NewModel: func() Model { return NewProtected(Config{Seed: seed}) },
			Trace:    tr,
		})
	}
	results := SimulateMany(runs)
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Records != 5_000 {
			t.Errorf("run %d: records = %d", i, r.Records)
		}
		if r.Model != "run" {
			t.Errorf("run %d: name = %q", i, r.Model)
		}
	}
	// Same seed must reproduce identical results concurrently.
	same := SimulateMany([]Run{
		{NewModel: func() Model { return NewProtected(Config{Seed: 42}) }, Trace: tr},
		{NewModel: func() Model { return NewProtected(Config{Seed: 42}) }, Trace: tr},
	})
	if same[0].Mispredicts != same[1].Mispredicts {
		t.Error("identical seeds diverged under concurrent execution")
	}
}
