package stbpu

// Cross-module integration tests: end-to-end flows a downstream user would
// exercise, spanning trace synthesis → codec → models → CPU → attacks.

import (
	"bytes"
	"testing"

	"stbpu/internal/core"
	"stbpu/internal/cpu"
	"stbpu/internal/experiments"
	"stbpu/internal/sim"
	"stbpu/internal/trace"
)

func TestEndToEndTraceCodecSimulation(t *testing.T) {
	// Generate → serialize → deserialize → simulate must be identical to
	// simulating the original trace.
	tr, err := GenerateWorkload("520.omnetpp", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Simulate(NewProtected(Config{Predictor: SKLCond, Seed: 4}), tr)
	b := Simulate(NewProtected(Config{Predictor: SKLCond, Seed: 4}), decoded)
	if a.Mispredicts != b.Mispredicts || a.Evictions != b.Evictions {
		t.Errorf("codec round-trip changed simulation results: %+v vs %+v", a, b)
	}
}

func TestEndToEndCPUPipeline(t *testing.T) {
	// Trace → protected BPU → OoO core must produce consistent branch
	// accounting between the sim layer and the CPU layer.
	tr, err := GenerateWorkload("541.leela", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewModel(core.ModelConfig{Dir: core.DirTAGE8, Seed: 6})
	res := cpu.New(cpu.ConfigFor("541.leela"), &sim.STBPUModel{Inner: m}).Run(tr)
	if res.Branch.Records != len(tr.Records) {
		t.Errorf("CPU branch accounting lost records: %d vs %d", res.Branch.Records, len(tr.Records))
	}
	if res.IPC() <= 0 {
		t.Errorf("IPC = %v", res.IPC())
	}
}

func TestTableIHolds(t *testing.T) {
	// The paper's end-to-end security claim, executable: every
	// deterministic baseline attack loses determinism under STBPU.
	res := experiments.RunTableI(5_000)
	if len(res.Rows) < 10 {
		t.Fatalf("Table I has %d rows", len(res.Rows))
	}
	baselineWins := 0
	for _, row := range res.Rows {
		if row.Baseline.Succeeded {
			baselineWins++
		}
	}
	if baselineWins < 8 {
		t.Errorf("only %d baseline attacks succeed; drivers degraded", baselineWins)
	}
	if !res.Holds() {
		var sb bytes.Buffer
		res.Render(&sb)
		t.Errorf("STBPU security claim violated:\n%s", sb.String())
	}
}

func TestAllWorkloadsThroughAllModels(t *testing.T) {
	// Smoke coverage: every preset workload runs through every protection
	// model without panics and with sane OAE.
	if testing.Short() {
		t.Skip("wide sweep")
	}
	for _, name := range trace.Fig3Workloads() {
		p, err := trace.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Generate(p.WithRecords(8_000))
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range sim.Fig3Kinds() {
			res := sim.Run(sim.New(kind, sim.Options{SharedTokens: p.SharedTokens}), tr)
			if oae := res.OAE(); oae < 0.4 || oae > 1 {
				t.Errorf("%s/%s: OAE %.3f out of range", name, kind, oae)
			}
		}
	}
}
