// SMT co-runs two SPEC workloads on one out-of-order core with a shared
// STBPU (Fig. 5): the two hardware threads hold different secret tokens,
// so they cannot groom each other's predictions, while the harmonic-mean
// IPC stays within a few percent of the unprotected core.
package main

import (
	"fmt"
	"log"

	"stbpu"
	"stbpu/internal/core"
	"stbpu/internal/cpu"
	"stbpu/internal/sim"
)

func main() {
	a, err := stbpu.GenerateWorkload("bwaves", 100_000)
	if err != nil {
		log.Fatal(err)
	}
	b, err := stbpu.GenerateWorkload("mcf", 100_000)
	if err != nil {
		log.Fatal(err)
	}

	baseCore := cpu.New(cpu.TableIVConfig(), &sim.UnitModel{
		ModelName: "TAGE_SC_L_64KB", Unit: core.NewUnprotectedUnit(core.DirTAGE64)})
	stModel := core.NewModel(core.ModelConfig{Dir: core.DirTAGE64, Seed: 23})
	stCore := cpu.New(cpu.TableIVConfig(), &sim.STBPUModel{Inner: stModel})

	unprot := baseCore.RunSMT(a, b)
	prot := stCore.RunSMT(a, b)

	fmt.Printf("SMT pair: %s + %s (Table IV core, shared BPU and caches)\n\n", a.Name, b.Name)
	fmt.Printf("%-22s %10s %10s %12s\n", "model", a.Name, b.Name, "hmean IPC")
	fmt.Printf("%-22s %10.3f %10.3f %12.3f\n", "unprotected",
		unprot.PerThread[0].IPC(), unprot.PerThread[1].IPC(), unprot.HarmonicMeanIPC())
	fmt.Printf("%-22s %10.3f %10.3f %12.3f\n", "ST_TAGE_SC_L_64KB",
		prot.PerThread[0].IPC(), prot.PerThread[1].IPC(), prot.HarmonicMeanIPC())
	fmt.Printf("\nthroughput retained: %.1f%%  (re-randomizations: %d)\n",
		100*prot.HarmonicMeanIPC()/unprot.HarmonicMeanIPC(), stModel.Rerandomizations())
	fmt.Println("\nSMT stresses STBPU hardest (§VII-B2): two threads share the monitored")
	fmt.Println("structures, so thresholds trip more often than single-threaded — yet the")
	fmt.Println("throughput cost stays under a few percent.")
}
