// Defensecompare runs the §VIII related-work head-to-head: the published
// alternative secure-BPU designs (BRB, BSUP, Zhao-DAC21, Exynos-XOR)
// against the unprotected baseline and STBPU, on both axes at once —
// prediction accuracy over mixed workloads, and the outcome of every
// collision-attack class in Table I. The paper argues this comparison
// qualitatively; this example regenerates it as measurements.
package main

import (
	"fmt"
	"os"

	"stbpu/internal/experiments"
)

func main() {
	fmt.Println("=== Accuracy: normalized OAE over switch-heavy + SPEC workloads ===")
	scale := experiments.Scale{Records: 60_000}
	acc, err := experiments.RunDefenseAccuracy(scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defensecompare: %v\n", err)
		os.Exit(1)
	}
	acc.Render(os.Stdout)

	fmt.Println("\n=== Security: attack classes vs defenses (OPEN = exploitable) ===")
	matrix := experiments.RunDefenseMatrix()
	matrix.Render(os.Stdout)

	fmt.Println("\nReading the matrix:")
	fmt.Println("  BRB retains the PHT per process but leaves the BTB shared -> target attacks open.")
	fmt.Println("  BSUP keys all structures but re-keys on a timer, not on attack events,")
	fmt.Println("       and one key register per core forfeits SMT isolation.")
	fmt.Println("  Zhao's XOR masks are linear: same-address-space aliases survive masking.")
	fmt.Println("  Exynos encrypts only indirect targets -> every PHT channel stays open.")
	fmt.Println("  STBPU combines keyed remapping, target encryption, and event-driven")
	fmt.Println("       re-randomization: every class is stopped at equal accuracy cost.")
}
