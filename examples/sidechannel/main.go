// Sidechannel demonstrates the BTB reuse side channel of Table I (RB-HE):
// a victim process executes a branch; a co-located attacker probes its own
// address space and detects the victim's branch through entry reuse,
// recovering the branch's location and target — the "Jump over ASLR"
// primitive. On the unprotected baseline the attack is a one-shot
// deterministic collision; STBPU forces a blind scan whose monitored event
// cost trips re-randomization long before the ~2^22-probe expectation.
package main

import (
	"fmt"

	"stbpu/internal/analysis"
	"stbpu/internal/attacks"
)

func main() {
	fmt.Println("=== BTB reuse side channel (victim branch disclosure) ===")

	base := attacks.BTBReuseSideChannel(attacks.NewBaselineTarget(), 1000)
	fmt.Printf("baseline: success=%v after %d probe(s) — %s\n",
		base.Succeeded, base.Trials, base.Leak)

	st := attacks.BTBReuseSideChannel(attacks.NewSTBPUTarget(nil), 150_000)
	fmt.Printf("STBPU:    success=%v after %d probes, %d mispredictions, %d evictions, %d re-randomizations\n",
		st.Succeeded, st.Trials, st.AttackerMispredicts, st.Evictions, st.Rerandomizations)

	probes := analysis.ExpectedProbesToCollision(analysis.SkylakeBTB())
	misp, evict := analysis.Thresholds(0.05)
	fmt.Printf("\nanalysis: a 50%%-probability collision needs ~%.0f probes (I·T·O/2),\n", probes/2)
	fmt.Printf("but the attacker's own probing generates monitored events, and the ST\n")
	fmt.Printf("re-randomizes every %.0f mispredictions / %.0f evictions — resetting all\n", misp, evict)
	fmt.Printf("accumulated knowledge each time. Observed: %d re-randomizations during the scan.\n",
		st.Rerandomizations)

	fmt.Println("\n=== BranchScope (PHT direction side channel) ===")
	for _, secret := range []bool{true, false} {
		b := attacks.BranchScope(attacks.NewBaselineTarget(), secret, 1000)
		fmt.Printf("baseline, secret=%-5v: leak=%q in %d trial(s)\n", secret, b.Leak, b.Trials)
	}
	s := attacks.BranchScope(attacks.NewSTBPUTarget(nil), true, 50_000)
	fmt.Printf("STBPU,    secret=true : one-shot read gone; blind scan took %d trials (deterministic read impossible)\n",
		s.Trials)
}
