// Covertchannel demonstrates a BPU covert channel and its elimination: a
// trojan (sender) and spy (receiver) in different processes communicate
// through PHT collision state, bypassing every software isolation
// boundary. On the unprotected baseline the channel moves ~1 bit per
// symbol essentially error-free; under STBPU the keyed PHT indexing
// decorrelates the two processes' views and the capacity collapses to
// ~0 — and with aggressive thresholds the signalling traffic itself trips
// token re-randomization.
package main

import (
	"fmt"

	"stbpu/internal/attacks"
	"stbpu/internal/token"
)

func main() {
	const bits = 1024

	fmt.Println("=== PHT covert channel: trojan -> spy across processes ===")
	fmt.Printf("transmitting %d random bits through PHT collisions\n\n", bits)

	base := attacks.PHTCovertChannel(attacks.NewBaselineTarget(), bits, 0xfeed)
	fmt.Printf("baseline: error rate %.3f, capacity %.3f bits/symbol, %.1f usable bits/krecord\n",
		base.ErrorRate(), base.CapacityPerSymbol(), base.BandwidthBitsPerKRecord())

	st := attacks.PHTCovertChannel(attacks.NewSTBPUTarget(nil), bits, 0xfeed)
	fmt.Printf("STBPU:    error rate %.3f, capacity %.3f bits/symbol, %.3f usable bits/krecord\n",
		st.ErrorRate(), st.CapacityPerSymbol(), st.BandwidthBitsPerKRecord())

	// A sensitive process can be given tighter thresholds (§IV-A): then
	// merely *operating* the channel triggers re-randomizations the OS
	// can observe and alert on.
	th := token.Thresholds{Mispredictions: 128, Evictions: 128}
	hot := attacks.PHTCovertChannel(attacks.NewSTBPUTarget(&th), bits, 0xfeed)
	fmt.Printf("\nwith aggressive thresholds (Γ=128): %d re-randomizations during the attempt —\n",
		hot.Rerandomizations)
	fmt.Println("the channel is not just closed, its operation is detectable.")
}
