// Quickstart: build an STBPU-protected branch predictor, run a SPEC-like
// workload through it, and compare accuracy against the unprotected
// baseline — the paper's headline claim (≈1.3% average OAE penalty,
// Fig. 3) in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"stbpu"
)

func main() {
	tr, err := stbpu.GenerateWorkload("505.mcf", 150_000)
	if err != nil {
		log.Fatal(err)
	}

	protected := stbpu.NewProtected(stbpu.Config{Predictor: stbpu.TAGE64, Seed: 42})
	baseline := stbpu.NewUnprotected(stbpu.TAGE64)

	p := stbpu.Simulate(protected, tr)
	b := stbpu.Simulate(baseline, tr)

	fmt.Printf("workload %s (%d branch records)\n", tr.Name, p.Records)
	fmt.Printf("  unprotected TAGE-SC-L 64KB: OAE %.4f  direction %.4f  target %.4f\n",
		b.OAE(), b.DirectionRate(), b.TargetRate())
	fmt.Printf("  ST_TAGE_SC_L_64KB:          OAE %.4f  direction %.4f  target %.4f\n",
		p.OAE(), p.DirectionRate(), p.TargetRate())
	fmt.Printf("  accuracy cost: %.2f%%  (re-randomizations: %d)\n",
		(b.OAE()-p.OAE())*100, p.Rerandomizations)
}
