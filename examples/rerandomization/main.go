// Rerandomization sweeps the attack-difficulty factor r (Fig. 6): lower r
// means tighter Γ = r·C thresholds, more frequent secret-token
// re-randomization, stronger security margin — and, past a point, the loss
// of all branch history. The OS owns this dial (§IV-A): it can harden
// sensitive processes without touching hardware.
package main

import (
	"fmt"
	"log"

	"stbpu"
	"stbpu/internal/core"
	"stbpu/internal/sim"
)

func main() {
	tr, err := stbpu.GenerateWorkload("531.deepsjeng", 120_000)
	if err != nil {
		log.Fatal(err)
	}

	base := stbpu.Simulate(stbpu.NewUnprotected(stbpu.TAGE64), tr)
	fmt.Printf("unprotected TAGE-SC-L 64KB on %s: OAE %.4f\n\n", tr.Name, base.OAE())
	fmt.Printf("%-10s %-14s %-14s %-10s %s\n", "r", "misp-budget", "evict-budget", "OAE", "re-randomizations")

	for _, r := range []float64{0.05, 0.01, 0.001, 0.0001, 0.00002} {
		th := stbpu.DeriveThresholds(r)
		model := &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{
			Dir: stbpu.TAGE64, Thresholds: &th, Seed: 11,
		})}
		res := stbpu.Simulate(model, tr)
		fmt.Printf("%-10.0e %-14d %-14d %-10.4f %d\n",
			r, th.Mispredictions, th.Evictions, res.OAE(), res.Rerandomizations)
	}

	fmt.Println("\nThe paper's operating point r=0.05 keeps accuracy essentially free;")
	fmt.Println("even 100× tighter budgets stay above 95% of nominal (Fig. 6). Only")
	fmt.Println("re-randomizing every few hundred events ceases BPU training entirely —")
	fmt.Println("the OS-selectable extreme for highly sensitive processes.")
}
