// Ptreplay demonstrates the trace workflow of §VII-B1 end to end: collect
// (synthesize) a workload, encode it as an Intel-PT-style packet stream,
// decode it back, and replay it through protection models — verifying the
// codec is lossless by comparing simulation results from both paths. It
// also prints the packet-stream composition, showing where real PT's
// bandwidth goes (TNT bits for conditionals, TIP bytes for indirect
// targets).
package main

import (
	"bytes"
	"fmt"
	"os"

	"stbpu"
)

func main() {
	tr, err := stbpu.GenerateWorkload("chrome-1speedometer", 120_000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptreplay:", err)
		os.Exit(1)
	}

	var stream bytes.Buffer
	stats, err := stbpu.WriteTracePT(&stream, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptreplay:", err)
		os.Exit(1)
	}
	fmt.Printf("encoded %d records into %d bytes (%.2f bytes/record)\n",
		stats.Records, stats.Bytes, stats.BytesPerRecord())
	fmt.Printf("packets: %d TNT (%d ticks), %d TIP, %d BIP, %d PIP, %d MODE, %d PSB\n",
		stats.TNTPackets, stats.TNTBits, stats.TIPPackets,
		stats.BIPPackets, stats.PIPPackets, stats.MODEPackets, stats.PSBPackets)

	decoded, err := stbpu.ReadTracePT(&stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptreplay:", err)
		os.Exit(1)
	}

	direct := stbpu.Simulate(stbpu.NewProtected(stbpu.Config{Seed: 11}), tr)
	replay := stbpu.Simulate(stbpu.NewProtected(stbpu.Config{Seed: 11}), decoded)
	fmt.Printf("\nsimulated OAE: %.4f direct, %.4f via PT round trip", direct.OAE(), replay.OAE())
	if direct.OAE() == replay.OAE() && direct.Mispredicts == replay.Mispredicts {
		fmt.Println(" — bit-identical results, codec is lossless")
	} else {
		fmt.Println(" — MISMATCH (codec bug)")
		os.Exit(1)
	}
}
