// Spectre demonstrates the target-injection attacks of §VI-A.1: Spectre v2
// (BTB poisoning) and SpectreRSB (return stack poisoning). On the baseline
// the victim speculatively executes an attacker-chosen gadget on the first
// attempt. Under STBPU, stored targets are encrypted with the owner's φ:
// even a colliding entry decrypts to a random address for the victim, so
// the attacker faces a 2^31-attempt expected brute force — every attempt a
// monitored misprediction.
package main

import (
	"fmt"

	"stbpu/internal/analysis"
	"stbpu/internal/attacks"
)

func main() {
	fmt.Println("=== Spectre v2 (branch target injection) ===")
	base := attacks.SpectreV2(attacks.NewBaselineTarget(), 10)
	fmt.Printf("baseline: gadget reached = %v (attempt %d)\n", base.Succeeded, base.Trials)

	st := attacks.SpectreV2(attacks.NewSTBPUTarget(nil), 100_000)
	fmt.Printf("STBPU:    gadget reached = %v after %d attempts (%d re-randomizations)\n",
		st.Succeeded, st.Trials, st.Rerandomizations)

	fmt.Println("\n=== SpectreRSB (return stack injection) ===")
	baseR := attacks.SpectreRSB(attacks.NewBaselineTarget(), 10)
	fmt.Printf("baseline: gadget reached = %v (attempt %d)\n", baseR.Succeeded, baseR.Trials)

	stR := attacks.SpectreRSB(attacks.NewSTBPUTarget(nil), 100_000)
	fmt.Printf("STBPU:    gadget reached = %v after %d attempts\n", stR.Succeeded, stR.Trials)

	inj := analysis.TargetInjectionMispredictions(analysis.SkylakeBTB())
	misp, _ := analysis.Thresholds(0.05)
	fmt.Printf("\nanalysis: τV = φa ⊕ τA ⊕ φv, so hitting a gadget needs ~%.3g attempts;\n", inj)
	fmt.Printf("the ST re-randomizes every %.0f mispredictions, i.e. ~%.0fx before the\n",
		misp, inj/misp)
	fmt.Println("attacker's first expected success — and each re-randomization re-keys φ.")

	fmt.Println("\n=== Same-address-space transient trojan (§VI-A.3) ===")
	baseT := attacks.SameAddressSpaceCollision(attacks.NewBaselineTarget(), 16)
	fmt.Printf("baseline: 2^32-alias collision = %v (trial %d) — truncated addressing\n",
		baseT.Succeeded, baseT.Trials)
	stT := attacks.SameAddressSpaceCollision(attacks.NewSTBPUTarget(nil), 50_000)
	fmt.Printf("STBPU:    collision = %v after %d trials — R1 consumes all 48 address bits\n",
		stT.Succeeded, stT.Trials)
}
