// Enclave demonstrates the §IV-A "OS not trusted" adaptation: on an
// SGX-style system the enclave-entry routine, not the OS, owns the
// enclave's secret token. The token is installed on every EENTER and
// re-randomized on every EEXIT, so no predictor state the enclave created
// is ever reachable from the untrusted world — including across two
// sessions of the same enclave (asynchronous exits can be
// attacker-induced, so sessions must not trust each other either).
//
// The demo drives a token-keyed BPU directly: a BranchScope-style spy in
// the untrusted world probes a secret-dependent branch the enclave
// trained.
package main

import (
	"fmt"

	"stbpu/internal/bpu"
	"stbpu/internal/remap"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// tokenMapper keys every BPU index computation with the live ST — the
// same construction STBPU's core uses, owned here by the enclave-entry
// microcode instead of the OS.
type tokenMapper struct {
	funcs remap.Funcs
	st    token.ST
}

var _ bpu.Mapper = (*tokenMapper)(nil)

func (m *tokenMapper) BTBIndex(pc uint64) (set, tag, offs uint32) { return m.funcs.R1(m.st.Psi, pc) }
func (m *tokenMapper) BTBTagBHB(bhb uint64) uint32                { return m.funcs.R2(m.st.Psi, bhb) }
func (m *tokenMapper) PHT1(pc uint64) uint32                      { return m.funcs.R3(m.st.Psi, pc) }
func (m *tokenMapper) PHT2(pc uint64, ghr uint64) uint32 {
	return m.funcs.R4(m.st.Psi, uint16(ghr), pc)
}
func (m *tokenMapper) EncryptTarget(t uint32) uint32 { return t ^ m.st.Phi }
func (m *tokenMapper) DecryptTarget(t uint32) uint32 { return t ^ m.st.Phi }

func condAt(pc uint64, taken bool) trace.Record {
	rec := trace.Record{PC: pc, Kind: trace.KindCond, Taken: taken, PID: 1}
	if taken {
		rec.Target = pc + 0x40
	} else {
		rec.Target = rec.FallThrough()
	}
	return rec
}

func main() {
	mgr := token.NewEnclaveManager(0x5ca1e, token.Derive(0.05))
	mapper := &tokenMapper{funcs: remap.NewMixer()}
	unit := bpu.NewUnit(bpu.UnitConfig{Mapper: mapper})

	osToken := token.ST{Psi: 0x0510_0510, Phi: 0x0e0e_0e0e} // untrusted world's token
	secretPC := uint64(0x40_1000)
	secret := true

	run := func(rec trace.Record) bpu.Prediction {
		pred := unit.Predict(rec.PC, rec.Kind)
		unit.Update(rec, pred)
		return pred
	}

	// --- Session 1: enclave trains its secret-dependent branch.
	st := mgr.Enter()
	mapper.st = st // EENTER installs the enclave token
	fmt.Printf("EENTER: session token ψ=%08x φ=%08x\n", st.Psi, st.Phi)
	for i := 0; i < 16; i++ {
		run(condAt(secretPC, secret))
	}
	mgr.Exit() // EEXIT re-randomizes the enclave token
	mapper.st = osToken
	fmt.Println("EEXIT: enclave token re-randomized, OS token restored")

	// --- The untrusted spy probes the enclave's branch address.
	pred := run(condAt(secretPC, false))
	fmt.Printf("OS-world spy probe at the enclave's branch: taken=%v (cold counter — no leak)\n",
		pred.Taken)

	// --- Session 2: the same enclave re-enters with a fresh token.
	st2 := mgr.Enter()
	mapper.st = st2
	fmt.Printf("EENTER: new session token ψ=%08x (differs from session 1: %v)\n",
		st2.Psi, st2.Psi != st.Psi)
	p2 := run(condAt(secretPC, secret))
	fmt.Printf("enclave's own first prediction this session: taken=%v (cold — history traded for isolation)\n",
		p2.Taken)
	mgr.Exit()
	mapper.st = osToken

	fmt.Printf("\nsessions: %d entries, %d exits\n", mgr.Entries, mgr.Exits)
}
