// Package stbpu is the public façade of the STBPU reproduction: a secure
// branch prediction unit that defends against collision-based BPU side
// channels and transient-execution attacks by keying every predictor
// index/tag computation with per-entity secret tokens, XOR-encrypting
// stored targets, and re-randomizing tokens when monitored event counters
// (mispredictions, BTB evictions) hit OS-configured thresholds.
//
// Reproduces: "STBPU: A Reasonably Secure Branch Prediction Unit",
// Zhang, Lesch, Koltermann, Evtyushkin — DSN 2022 (arXiv:2108.02156).
//
// Quick start:
//
//	model := stbpu.NewProtected(stbpu.Config{Predictor: stbpu.TAGE64})
//	tr, _ := stbpu.GenerateWorkload("505.mcf", 100_000)
//	res := stbpu.Simulate(model, tr)
//	fmt.Printf("OAE %.3f after %d re-randomizations\n", res.OAE(), res.Rerandomizations)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package stbpu

import (
	"io"
	"runtime"
	"sync"

	"stbpu/internal/core"
	"stbpu/internal/defenses"
	"stbpu/internal/pt"
	"stbpu/internal/sim"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

// Predictor selects the conditional direction predictor of a model.
type Predictor = core.DirKind

// Available predictors (paper §VII-B2).
const (
	// SKLCond is the Skylake-style hybrid baseline predictor.
	SKLCond = core.DirSKLCond
	// TAGE8 is TAGE-SC-L 8KB.
	TAGE8 = core.DirTAGE8
	// TAGE64 is TAGE-SC-L 64KB.
	TAGE64 = core.DirTAGE64
	// Perceptron is PerceptronBP.
	Perceptron = core.DirPerceptron
)

// Thresholds are the ST re-randomization budgets; see DeriveThresholds.
type Thresholds = token.Thresholds

// DeriveThresholds computes Γ = r·C budgets from the attack-difficulty
// factor r. The paper operates at r = 0.05 (≈41.9k mispredictions, ≈26.5k
// evictions).
func DeriveThresholds(r float64) Thresholds { return token.Derive(r) }

// Config assembles a protected model.
type Config struct {
	// Predictor picks the direction predictor (default SKLCond).
	Predictor Predictor
	// Thresholds overrides the r=0.05 defaults; nil keeps them.
	Thresholds *Thresholds
	// SharedTokens keys secret tokens by program instead of process
	// (the OS's selective history sharing for pre-forked servers).
	SharedTokens bool
	// Seed fixes the token PRNG for reproducible runs.
	Seed uint64
}

// Model is a BPU that can replay trace records. Both protected and
// unprotected variants satisfy it.
type Model = sim.Model

// NewProtected builds an STBPU-protected predictor.
func NewProtected(cfg Config) Model {
	return &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{
		Dir:          cfg.Predictor,
		Thresholds:   cfg.Thresholds,
		SharedTokens: cfg.SharedTokens,
		Seed:         cfg.Seed,
	})}
}

// NewUnprotected builds the deterministic legacy twin of a predictor.
func NewUnprotected(p Predictor) Model {
	return &sim.UnitModel{ModelName: p.String(), Unit: core.NewUnprotectedUnit(p)}
}

// Trace is a branch-instruction trace.
type Trace = trace.Trace

// Result aggregates a simulation run; see its OAE, DirectionRate and
// TargetRate methods.
type Result = sim.Result

// GenerateWorkload synthesizes a named workload trace with the given
// record budget. Workloads returns the available names.
func GenerateWorkload(name string, records int) (*Trace, error) {
	p, err := trace.Preset(name)
	if err != nil {
		return nil, err
	}
	return trace.Generate(p.WithRecords(records))
}

// Workloads lists all built-in workload presets (23 SPEC CPU 2017 plus
// server/interactive applications, per the paper's Fig. 3).
func Workloads() []string { return trace.PresetNames() }

// Simulate replays a trace through a model and returns aggregate
// statistics.
func Simulate(m Model, tr *Trace) Result { return sim.Run(m, tr) }

// ---------------------------------------------------------------------------
// Extensions beyond the Fig. 3 lineup: related-work defenses (§VIII),
// the ITTAGE indirect predictor (§IV generality), microcode-style
// protection models, and trace I/O in both binary formats.

// Defense identifies a related-work secure-BPU design from §VIII.
type Defense = defenses.Kind

// Related-work defense models (§VIII), for head-to-head comparison.
const (
	// BRB is the branch retention buffer (Vougioukas et al., HPCA 2019).
	BRB = defenses.KindBRB
	// BSUP is two-level encryption (Lee, Ishii, Sunwoo, TACO 2020).
	BSUP = defenses.KindBSUP
	// ZhaoDAC21 is lightweight XOR isolation (Zhao et al., DAC 2021).
	ZhaoDAC21 = defenses.KindZhao
	// ExynosXOR is the Samsung Exynos target encryption (ISCA 2020).
	ExynosXOR = defenses.KindExynos
)

// NewDefense builds a related-work defense model for comparison runs.
func NewDefense(d Defense, seed uint64) Model {
	return defenses.New(d, defenses.Options{Seed: seed})
}

// Protection identifies a Fig. 3 protection model (microcode flushing,
// conservative restructuring, or STBPU itself).
type Protection = sim.ModelKind

// Fig. 3 protection models.
const (
	// Baseline is the unprotected Skylake-style BPU.
	Baseline = sim.KindBaseline
	// Ucode1 models IBPB+IBRS+STIBP microcode protection.
	Ucode1 = sim.KindUcode1
	// Ucode2 models IBPB+IBRS microcode protection.
	Ucode2 = sim.KindUcode2
	// Conservative models the full-address, reduced-capacity redesign.
	Conservative = sim.KindConservative
	// STBPU is the paper's design.
	STBPU = sim.KindSTBPU
)

// NewProtection builds one of the Fig. 3 protection models.
func NewProtection(p Protection, cfg Config) Model {
	return sim.New(p, sim.Options{
		SharedTokens: cfg.SharedTokens,
		Thresholds:   cfg.Thresholds,
		Dir:          cfg.Predictor,
		Seed:         cfg.Seed,
	})
}

// NewProtectedITTAGE builds an STBPU model with a token-keyed ITTAGE
// indirect-target predictor attached ahead of the BTB mode-two path (the
// §IV generality demonstration for indirect prediction).
func NewProtectedITTAGE(cfg Config) Model {
	return &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{
		Dir:            cfg.Predictor,
		Thresholds:     cfg.Thresholds,
		SharedTokens:   cfg.SharedTokens,
		Seed:           cfg.Seed,
		IndirectITTAGE: true,
	})}
}

// WriteTrace encodes a trace in the STBT record-delta format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTrace decodes an STBT stream.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTracePT encodes a trace as an Intel-PT-style STPT packet stream
// and reports its packet composition.
func WriteTracePT(w io.Writer, tr *Trace) (pt.Stats, error) { return pt.Encode(w, tr) }

// ReadTracePT decodes an STPT packet stream.
func ReadTracePT(r io.Reader) (*Trace, error) { return pt.Decode(r) }

// Run pairs a model constructor with a workload for batch simulation.
// Models are stateful single-owner structures (like the hardware they
// model), so the batch API takes constructors rather than instances.
type Run struct {
	// Name labels the run in results (defaults to model/workload).
	Name string
	// NewModel constructs a fresh model for this run.
	NewModel func() Model
	// Trace is the workload to replay.
	Trace *Trace
}

// SimulateMany executes runs concurrently (one goroutine per run, bounded
// by GOMAXPROCS through the scheduler) and returns results in input
// order. Each run gets its own freshly constructed model, so no state is
// shared between goroutines.
func SimulateMany(runs []Run) []Result {
	results := make([]Result, len(runs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, r := range runs {
		wg.Add(1)
		go func(i int, r Run) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := sim.Run(r.NewModel(), r.Trace)
			if r.Name != "" {
				res.Model = r.Name
			}
			results[i] = res
		}(i, r)
	}
	wg.Wait()
	return results
}
