#!/usr/bin/env bash
# Perf-trend gate: run the replay-path, predictor, trace-generator, and
# wire-codec micro-benchmarks, write BENCH_10.json (benchmark -> ns/op,
# allocs/op), and fail when a metric regresses against the committed
# baseline. Fleet benchmarks (harness/FleetWarm*) are recorded for trend
# visibility but never threshold-gated: they time a live 2-worker TCP
# fleet, where scheduler and network jitter dwarfs any micro-regression.
#
# usage: scripts/bench_gate.sh [-update]
#   -update    rewrite BENCH_10.json as the new baseline and skip the gate
#
# env knobs:
#   BENCH_GATE_BENCHTIME        go test -benchtime (default 0.3s)
#   BENCH_GATE_COUNT            go test -count; the recorded value per
#                               benchmark is the MINIMUM across runs
#                               (default 3 — the min is far more stable
#                               than any single sample, which is what a
#                               10% gate needs)
#   BENCH_GATE_NS_THRESHOLD     max tolerated relative ns/op growth
#                               (default 0.10 — same-machine baselines;
#                               CI runs cross-machine and widens this,
#                               relying on the alloc gate for precision)
#   BENCH_GATE_ALLOC_THRESHOLD  max tolerated relative allocs/op growth
#                               (default 0 — allocation counts are
#                               deterministic, any increase fails)
#   BENCH_GATE_ALLOC_SLACK      absolute allocs/op allowance on top of
#                               the relative threshold (default 1 —
#                               runtime-internal allocations during the
#                               timed window leak ±1 into the memstats
#                               delta on busy machines; a real leak
#                               scales with the op and clears the slack)
#
# Benchmarks are keyed as <package>/<name> with the GOMAXPROCS suffix
# stripped, so the file is stable across machines with different core
# counts. A benchmark present in the baseline but missing from the run
# fails the gate: silently losing perf coverage is itself a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_10.json
BENCHTIME="${BENCH_GATE_BENCHTIME:-0.3s}"
COUNT="${BENCH_GATE_COUNT:-3}"
NS_THR="${BENCH_GATE_NS_THRESHOLD:-0.10}"
ALLOC_THR="${BENCH_GATE_ALLOC_THRESHOLD:-0}"
ALLOC_SLACK="${BENCH_GATE_ALLOC_SLACK:-1}"
PKGS=(./internal/sim/ ./internal/tage/ ./internal/perceptron/ ./internal/ittage/ ./internal/tracestore/ ./internal/trace/ ./internal/snapstore/)

update=0
if [ "${1:-}" = "-update" ]; then
  update=1
elif [ -n "${1:-}" ]; then
  echo "usage: scripts/bench_gate.sh [-update]" >&2
  exit 2
fi

command -v jq >/dev/null || { echo "bench_gate: jq is required" >&2; exit 2; }

if [ "$update" -eq 0 ] && [ ! -f "$OUT" ]; then
  echo "bench_gate: no committed baseline $OUT; run scripts/bench_gate.sh -update first" >&2
  exit 2
fi

baseline_tsv=""
if [ -f "$OUT" ]; then
  baseline_tsv=$(jq -r '.benchmarks | to_entries[] | "\(.key)\t\(.value.ns_per_op)\t\(.value.allocs_per_op)"' "$OUT")
fi

echo "bench_gate: running ${PKGS[*]} at -benchtime $BENCHTIME -count $COUNT" >&2
raw=$(go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" -count "$COUNT" "${PKGS[@]}")
# The harness package holds the wire-codec and fleet benchmarks; its
# whole-suite benchmark (Fig3Fig4) is excluded — it times entire
# scenario runs, too coarse for a micro-benchmark gate.
echo "bench_gate: running ./internal/harness/ (WireSpecs, FleetWarm) at -benchtime $BENCHTIME -count $COUNT" >&2
raw="$raw
$(go test -run '^$' -bench 'BenchmarkWireSpecs|BenchmarkFleetWarm' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" ./internal/harness/)"

# "pkg: stbpu/internal/sim" headers scope the benchmark names; value
# fields precede their unit tokens (ns/op, allocs/op). With -count > 1
# each benchmark appears once per run; keep the minimum, the stable
# statistic under scheduler noise.
new_tsv=$(printf '%s\n' "$raw" | awk '
  $1 == "pkg:" { n = split($2, parts, "/"); pkg = parts[n]; next }
  $1 ~ /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "" || allocs == "") next
    key = pkg "/" name
    if (!(key in min_ns) || ns + 0 < min_ns[key] + 0) min_ns[key] = ns
    if (!(key in min_al) || allocs + 0 < min_al[key] + 0) min_al[key] = allocs
  }
  END { for (key in min_ns) printf "%s\t%s\t%s\n", key, min_ns[key], min_al[key] }' | sort)

if [ -z "$new_tsv" ]; then
  echo "bench_gate: no benchmark results parsed" >&2
  exit 2
fi

# The committed baseline is only ever replaced by an explicit -update:
# a gate run writes its measurements next to it ($OUT.measured) instead,
# so neither a failed run (which would let an immediate rerun gate
# against the regression) nor a passing run (which would silently
# ratchet the baseline by sub-threshold drift, or down to a lucky fast
# sample) can mutate what the gate compares against.
write_out() {
  printf '%s\n' "$new_tsv" | jq -R -s '
    {benchmarks: (split("\n") | map(select(length > 0) | split("\t")
      | {key: .[0], value: {ns_per_op: (.[1] | tonumber), allocs_per_op: (.[2] | tonumber)}})
      | from_entries)}' > "$1"
  echo "bench_gate: wrote $1 ($(printf '%s\n' "$new_tsv" | wc -l) benchmarks)" >&2
}

if [ "$update" -eq 1 ]; then
  write_out "$OUT"
  echo "bench_gate: baseline updated, gate skipped" >&2
  exit 0
fi

printf '%s\n%s\n' "$baseline_tsv" "@@NEW@@" > /tmp/bench_gate_cmp.$$
printf '%s\n' "$new_tsv" >> /tmp/bench_gate_cmp.$$
fail=$(awk -F'\t' -v ns_thr="$NS_THR" -v alloc_thr="$ALLOC_THR" -v alloc_slack="$ALLOC_SLACK" '
  /^@@NEW@@$/ { phase = 1; next }
  NF < 3 { next }
  phase == 0 { base_ns[$1] = $2; base_allocs[$1] = $3; next }
  {
    seen[$1] = 1
    if (!($1 in base_ns)) { printf "new       %-48s ns/op=%s allocs/op=%s (no baseline)\n", $1, $2, $3; next }
    # Fleet benchmarks are recorded, never gated (see header).
    if ($1 ~ /^harness\/FleetWarm/) next
    ns = $2 + 0; bns = base_ns[$1] + 0
    al = $3 + 0; bal = base_allocs[$1] + 0
    if (bns > 0 && ns > bns * (1 + ns_thr)) {
      printf "REGRESSED %-48s ns/op %s -> %s (+%.1f%%, limit +%.0f%%)\n", $1, bns, ns, (ns / bns - 1) * 100, ns_thr * 100
      bad = 1
    }
    if (al > bal * (1 + alloc_thr) + alloc_slack) {
      printf "REGRESSED %-48s allocs/op %s -> %s (limit +%.0f%% +%d)\n", $1, bal, al, alloc_thr * 100, alloc_slack
      bad = 1
    }
  }
  END {
    for (name in base_ns) if (!(name in seen)) { printf "MISSING   %-48s present in baseline, absent from run\n", name; bad = 1 }
    exit bad
  }' /tmp/bench_gate_cmp.$$) && status=0 || status=1
rm -f /tmp/bench_gate_cmp.$$
[ -n "$fail" ] && printf '%s\n' "$fail" >&2

write_out "$OUT.measured"
if [ "$status" -ne 0 ]; then
  echo "bench_gate: FAILED against committed baseline (ns threshold +${NS_THR}, alloc threshold +${ALLOC_THR}); measured values in $OUT.measured, baseline left intact" >&2
  exit 1
fi
echo "bench_gate: OK — no metric regressed beyond thresholds (measured values in $OUT.measured; refresh the baseline with -update)" >&2
