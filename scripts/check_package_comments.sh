#!/usr/bin/env bash
# Fails if any internal/* package lacks a package comment ("// Package
# <name> ..." in some non-test file). Package comments are the entry
# point godoc and docs/ARCHITECTURE.md cross-reference; CI runs this so
# new packages can't land undocumented.
set -euo pipefail
cd "$(dirname "$0")/.."

missing=0
for dir in internal/*/; do
  files=$(find "$dir" -maxdepth 1 -name '*.go' ! -name '*_test.go')
  [ -z "$files" ] && continue
  # shellcheck disable=SC2086
  if ! grep -q -l '^// Package ' $files; then
    echo "missing package comment: ${dir%/}" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo 'add a "// Package <name> ..." comment (conventionally in doc.go)' >&2
  exit 1
fi
echo "all internal packages have package comments"
