package stbpu

// Benchmark harness: one benchmark per paper table/figure (DESIGN.md §4)
// plus the ablations of §5. Benchmarks run at a reduced scale and publish
// their headline numbers via b.ReportMetric; `cmd/stbpu-bench` regenerates
// the complete tables at full scale.

import (
	"testing"

	"stbpu/internal/analysis"
	"stbpu/internal/attacks"
	"stbpu/internal/bpu"
	"stbpu/internal/core"
	"stbpu/internal/cpu"
	"stbpu/internal/experiments"
	"stbpu/internal/remap"
	"stbpu/internal/rng"
	"stbpu/internal/sim"
	"stbpu/internal/token"
	"stbpu/internal/trace"
)

func benchScale() experiments.Scale {
	return experiments.Scale{Records: 30_000, MaxWorkloads: 6, MaxPairs: 4}
}

// BenchmarkFig3_OAE regenerates the Fig. 3 comparison (overall effective
// accuracy of baseline, µcode-1/2, conservative, STBPU) at bench scale.
func BenchmarkFig3_OAE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgNormalized[1], "ucode1_norm_oae")
		b.ReportMetric(res.AvgNormalized[2], "ucode2_norm_oae")
		b.ReportMetric(res.AvgNormalized[3], "conservative_norm_oae")
		b.ReportMetric(res.AvgNormalized[4], "stbpu_norm_oae")
	}
}

// BenchmarkFig4_SingleWorkload regenerates Fig. 4 (direction/target
// prediction reductions and normalized IPC of the four ST models).
func BenchmarkFig4_SingleWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var ipc, dir float64
		for _, c := range res.Avg {
			ipc += c.NormIPC / 4
			dir += c.DirReduction / 4
		}
		b.ReportMetric(ipc, "avg_norm_ipc")
		b.ReportMetric(dir*100, "avg_dir_reduction_pp")
	}
}

// BenchmarkFig5_SMT regenerates Fig. 5 (SMT pairs, harmonic-mean IPC).
func BenchmarkFig5_SMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var ipc float64
		for _, c := range res.Avg {
			ipc += c.NormIPC / 4
		}
		b.ReportMetric(ipc, "avg_norm_hm_ipc")
	}
}

// BenchmarkFig6_AggressiveRerand regenerates the Fig. 6 threshold sweep.
func BenchmarkFig6_AggressiveRerand(b *testing.B) {
	s := benchScale()
	s.MaxPairs = 2
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(s, []float64{5e-2, 5e-4, 2e-6})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].Accuracy, "acc_at_r5e-2")
		b.ReportMetric(res.Points[len(res.Points)-1].Accuracy, "acc_at_extreme_r")
	}
}

// BenchmarkTableV_AttackComplexities evaluates the §VI-A.5 closed-form
// attack complexities and the Γ = r·C thresholds.
func BenchmarkTableV_AttackComplexities(b *testing.B) {
	var misp, evict float64
	for i := 0; i < b.N; i++ {
		misp, evict = analysis.Thresholds(token.DefaultR)
	}
	b.ReportMetric(misp, "misp_threshold")
	b.ReportMetric(evict, "evict_threshold")
	b.ReportMetric(analysis.ReuseBTBMispredictions(analysis.SkylakeBTB()), "btb_reuse_misp")
}

// BenchmarkTableI_AttackSurface runs the Table I attack drivers against
// both models and reports the STBPU hold rate.
func BenchmarkTableI_AttackSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		baseWins, stBlocks := 0, 0
		base := []attacks.Result{
			attacks.BTBReuseSideChannel(attacks.NewBaselineTarget(), 100),
			attacks.BranchScope(attacks.NewBaselineTarget(), true, 100),
			attacks.SameAddressSpaceCollision(attacks.NewBaselineTarget(), 16),
			attacks.SpectreV2(attacks.NewBaselineTarget(), 4),
			attacks.SpectreRSB(attacks.NewBaselineTarget(), 4),
		}
		for _, r := range base {
			if r.Succeeded {
				baseWins++
			}
		}
		st := []attacks.Result{
			attacks.BTBReuseSideChannel(attacks.NewSTBPUTarget(nil), 20_000),
			attacks.SameAddressSpaceCollision(attacks.NewSTBPUTarget(nil), 5_000),
			attacks.SpectreV2(attacks.NewSTBPUTarget(nil), 2_000),
			attacks.SpectreRSB(attacks.NewSTBPUTarget(nil), 2_000),
		}
		for _, r := range st {
			if !r.Succeeded {
				stBlocks++
			}
		}
		b.ReportMetric(float64(baseWins), "baseline_attacks_succeed")
		b.ReportMetric(float64(stBlocks), "stbpu_attacks_blocked")
	}
}

// BenchmarkTableII_RemapFunctions measures the shipped remapping functions:
// generated-circuit evaluation cost vs the fast mixer.
func BenchmarkTableII_RemapFunctions(b *testing.B) {
	set, err := remap.DefaultCircuitSet()
	if err != nil {
		b.Fatal(err)
	}
	mixer := remap.NewMixer()
	b.Run("circuit_R1", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			ind, _, _ := set.R1(0x1234, uint64(i)*64)
			sink += ind
		}
		_ = sink
	})
	b.Run("mixer_R1", func(b *testing.B) {
		var sink uint32
		for i := 0; i < b.N; i++ {
			ind, _, _ := mixer.R1(0x1234, uint64(i)*64)
			sink += ind
		}
		_ = sink
	})
}

// BenchmarkRemapGenerator measures the §V-A automated circuit search.
func BenchmarkRemapGenerator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := remap.GenConfig{Name: "R1", InBits: 80, OutBits: 22,
			Candidates: 1, Samples: 64, Seed: uint64(i) + 1}
		if _, _, err := remap.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// BenchmarkAblation_RemapBackends compares simulation accuracy under the
// bit-accurate circuits vs the fast mixer: the accuracy deltas must be
// noise while the speed difference motivates the default.
func BenchmarkAblation_RemapBackends(b *testing.B) {
	tr, err := GenerateWorkload("505.mcf", 20_000)
	if err != nil {
		b.Fatal(err)
	}
	set, err := remap.DefaultCircuitSet()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		mixerModel := &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: SKLCond, Seed: 3})}
		circModel := &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: SKLCond, Seed: 3, Funcs: set})}
		a := sim.Run(mixerModel, tr)
		c := sim.Run(circModel, tr)
		b.ReportMetric(a.OAE(), "mixer_oae")
		b.ReportMetric(c.OAE(), "circuit_oae")
	}
}

// BenchmarkAblation_TageThresholdRegister toggles the dedicated TAGE
// misprediction register (§VII-B2): without it, tagged-bank mispredictions
// drain the main budget and re-randomizations multiply.
func BenchmarkAblation_TageThresholdRegister(b *testing.B) {
	tr, err := GenerateWorkload("531.deepsjeng", 30_000)
	if err != nil {
		b.Fatal(err)
	}
	off := false
	for i := 0; i < b.N; i++ {
		with := core.NewModel(core.ModelConfig{Dir: TAGE64, Seed: 5})
		without := core.NewModel(core.ModelConfig{Dir: TAGE64, Seed: 5, SeparateTageRegister: &off})
		for _, rec := range tr.Records {
			with.Step(rec)
			without.Step(rec)
		}
		b.ReportMetric(float64(with.Rerandomizations()), "rerand_with_register")
		b.ReportMetric(float64(without.Rerandomizations()), "rerand_without_register")
	}
}

// feistelMapper is the §V ablation cipher: a 4-round Feistel network over
// the 32-bit stored target, standing in for PRINCE-class lightweight
// ciphers. Stronger than XOR, and — per the paper's argument — pointless:
// the attacker never sees ciphertext, so security does not improve, while
// hardware latency would.
type feistelMapper struct {
	bpu.LegacyMapper
	keys [4]uint16
}

func (f *feistelMapper) round(v uint32, k uint16) uint32 {
	l, r := uint16(v>>16), uint16(v)
	fOut := r ^ k
	fOut = fOut<<5 | fOut>>11
	fOut *= 0x9e37
	return uint32(r)<<16 | uint32(l^fOut)
}

func (f *feistelMapper) EncryptTarget(t uint32) uint32 {
	for _, k := range f.keys {
		t = f.round(t, k)
	}
	return t
}

func (f *feistelMapper) DecryptTarget(t uint32) uint32 {
	for i := len(f.keys) - 1; i >= 0; i-- {
		l, r := uint16(t>>16), uint16(t)
		fOut := l ^ f.keys[i]
		fOut = fOut<<5 | fOut>>11
		fOut *= 0x9e37
		t = uint32(r^fOut)<<16 | uint32(l)
	}
	return t
}

// BenchmarkAblation_TargetCipher compares XOR target encryption against the
// Feistel alternative: identical prediction accuracy, higher compute cost.
func BenchmarkAblation_TargetCipher(b *testing.B) {
	tr, err := GenerateWorkload("525.x264", 20_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("xor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := &sim.UnitModel{ModelName: "xor", Unit: core.NewUnprotectedUnit(SKLCond)}
			b.ReportMetric(sim.Run(m, tr).OAE(), "oae")
		}
	})
	b.Run("feistel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fm := &feistelMapper{keys: [4]uint16{0x1a2b, 0x3c4d, 0x5e6f, 0x7081}}
			u := bpu.NewUnit(bpu.UnitConfig{Mapper: fm})
			m := &sim.UnitModel{ModelName: "feistel", Unit: u}
			b.ReportMetric(sim.Run(m, tr).OAE(), "oae")
		}
	})
	b.Run("xor_op", func(b *testing.B) {
		var k core.DirKind
		_ = k
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink ^= uint32(i) ^ 0xdeadbeef
		}
		_ = sink
	})
	b.Run("feistel_op", func(b *testing.B) {
		fm := &feistelMapper{keys: [4]uint16{0x1a2b, 0x3c4d, 0x5e6f, 0x7081}}
		var sink uint32
		for i := 0; i < b.N; i++ {
			sink ^= fm.EncryptTarget(uint32(i))
		}
		_ = sink
	})
}

// BenchmarkAblation_RerandVsFlush compares STBPU's event-driven token
// re-randomization against flushing at the same trigger points — the
// design choice §IV-A motivates (re-randomizing one entity keeps every
// other entity's history intact).
func BenchmarkAblation_RerandVsFlush(b *testing.B) {
	tr, err := GenerateWorkload("mysql_128con_50s", 30_000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		st := sim.New(sim.KindSTBPU, sim.Options{SharedTokens: true, Seed: 9})
		fl := sim.New(sim.KindUcode2, sim.Options{Seed: 9})
		b.ReportMetric(sim.Run(st, tr).OAE(), "rerand_oae")
		b.ReportMetric(sim.Run(fl, tr).OAE(), "flush_oae")
	}
}

// BenchmarkSimulatorThroughput measures raw model stepping speed.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := GenerateWorkload("505.mcf", 100_000)
	if err != nil {
		b.Fatal(err)
	}
	m := NewProtected(Config{Predictor: SKLCond, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(tr.Records[i%len(tr.Records)])
	}
}

// BenchmarkTokenManager measures token lookup/re-randomization cost.
func BenchmarkTokenManager(b *testing.B) {
	mgr := token.NewManager(1, token.Derive(0.05))
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.OnMisprediction(uint64(r.Intn(64)))
	}
}

// BenchmarkTraceGeneration measures synthetic workload synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	p, err := trace.Preset("502.gcc")
	if err != nil {
		b.Fatal(err)
	}
	p = p.WithRecords(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComparison_Defenses runs the §VIII related-work head-to-head:
// normalized OAE of BRB, BSUP, Zhao-DAC21, Exynos-XOR vs baseline and
// STBPU, plus the attack-outcome matrix.
func BenchmarkComparison_Defenses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		acc, err := experiments.RunDefenseAccuracy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for k, name := range acc.Models {
			if name == "baseline" {
				continue
			}
			b.ReportMetric(acc.AvgNormalized[k], name+"_norm_oae")
		}
		matrix := experiments.RunDefenseMatrix()
		open := 0
		for a := range matrix.Attacks {
			for m := range matrix.Models {
				if matrix.Cells[a][m].Succeeded {
					open++
				}
			}
		}
		b.ReportMetric(float64(open), "open_cells")
	}
}

// BenchmarkAblation_TimingEngines compares the interval timing model
// against the stage-driven pipeline engine on the same workload and BPU
// pair. The reproduction claim of Fig. 4 rests on *relative* IPC between
// an ST model and its unprotected twin; both engines must agree on that
// ratio even though their absolute IPCs differ.
func BenchmarkAblation_TimingEngines(b *testing.B) {
	prof, err := trace.Preset("505.mcf")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(prof.WithRecords(20_000))
	if err != nil {
		b.Fatal(err)
	}
	newModels := func() (sim.Model, sim.Model) {
		unprot := &sim.UnitModel{ModelName: "baseline", Unit: core.NewUnprotectedUnit(core.DirSKLCond)}
		prot := &sim.STBPUModel{Inner: core.NewModel(core.ModelConfig{Dir: core.DirSKLCond, Seed: 7})}
		return unprot, prot
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unprot, prot := newModels()
		ivU := cpu.New(cpu.TableIVConfig(), unprot).Run(tr).IPC()
		ivP := cpu.New(cpu.TableIVConfig(), prot).Run(tr).IPC()

		unprot, prot = newModels()
		pU, err := cpu.NewPipeline(cpu.DefaultPipelineConfig(), unprot)
		if err != nil {
			b.Fatal(err)
		}
		pP, err := cpu.NewPipeline(cpu.DefaultPipelineConfig(), prot)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ivP/ivU, "interval_norm_ipc")
		b.ReportMetric(pP.Run(tr).IPC()/pU.Run(tr).IPC(), "pipeline_norm_ipc")
	}
}

// BenchmarkCovertChannel measures the PHT covert channel on the defense
// lineup: capacity ≈ 1 bit/symbol on the baseline, ≈ 0 under STBPU.
func BenchmarkCovertChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunCovertComparison(256)
		if base, ok := res.Row("baseline"); ok {
			b.ReportMetric(base.Capacity, "baseline_bits/sym")
			b.ReportMetric(base.Bandwidth, "baseline_bits/krec")
		}
		if st, ok := res.Row("STBPU"); ok {
			b.ReportMetric(st.Capacity, "stbpu_bits/sym")
		}
	}
}

// BenchmarkSecurity_GammaSweep reports the security side of the Fig. 6
// threshold sweep: per-epoch attack success probability and epochs-to-50%
// as r shrinks (the performance side is BenchmarkFig6_AggressiveRerand).
func BenchmarkSecurity_GammaSweep(b *testing.B) {
	rs := []float64{0.05, 0.005, 5e-4, 5e-5, 5e-6, 5e-7}
	for i := 0; i < b.N; i++ {
		rows := analysis.GammaSweep(rs)
		b.ReportMetric(rows[0].EpochSuccess, "epoch_success_r0.05")
		b.ReportMetric(rows[0].EpochsFor50, "epochs_to_50pct_r0.05")
		b.ReportMetric(rows[len(rows)-1].EpochsFor50, "epochs_to_50pct_r5e-7")
	}
}

// BenchmarkExtension_ITTAGE backs the §IV generality claim on the
// indirect side: a dedicated ITTAGE target predictor, unprotected vs
// ST-protected, against the BTB-only configurations.
func BenchmarkExtension_ITTAGE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunITTAGE(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		names := experiments.ITTAGEVariants()
		for v, n := range names {
			b.ReportMetric(res.AvgTargetRate[v], n+"_target_rate")
		}
	}
}

// BenchmarkWarmupCurve measures the warm-state mechanism behind the
// Fig. 3 magnitude caveat: the flushing models' normalized OAE falls as
// traces lengthen (more history to lose per flush), STBPU's stays flat.
func BenchmarkWarmupCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWarmup("mysql_128con_50s", []int{10_000, 40_000, 120_000})
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(first.NormOAE[1], "ucode1_norm_oae_10k")
		b.ReportMetric(last.NormOAE[1], "ucode1_norm_oae_120k")
		b.ReportMetric(last.NormOAE[4], "stbpu_norm_oae_120k")
	}
}
