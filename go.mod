module stbpu

go 1.21
